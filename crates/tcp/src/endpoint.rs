//! The TCP endpoint state machine.
//!
//! One [`TcpEndpoint`] is one side of one (sub)flow. It is driven entirely
//! by the host:
//!
//! ```text
//! host event                 endpoint call                 emissions
//! ------------------------   ---------------------------   -----------------
//! packet arrives             on_segment(now, seg)          -> delivered ranges
//! timer fires                on_deadline(now)
//! app writes                 write(bytes)
//! any of the above           poll_transmit(now) until None -> segments to send
//! (re-arm timers from next_deadline())
//! ```
//!
//! Segments carry byte counts, not bytes. Sequence space: the SYN occupies
//! seq 0, stream byte `i` occupies seq `1 + i`, the FIN occupies
//! `1 + app_bytes`.

use crate::cc::{CcAlgorithm, CongestionCtrl};
use crate::rtt::RttEstimator;
use crate::segment::{Segment, DEFAULT_MSS};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{TelemetryScope, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Endpoint configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes).
    pub mss: u32,
    /// Initial congestion window in segments (Linux IW10).
    pub init_cwnd_segments: u32,
    /// Receive buffer: the advertised window ceiling.
    pub rwnd_bytes: u64,
    /// Delayed ACKs (every second full segment or timeout).
    pub delayed_ack: bool,
    /// Delayed-ACK timeout.
    pub delack_timeout: SimDuration,
    /// RFC 2861 congestion-window validation after idle. eMPTCP disables
    /// this on resumed subflows (§3.6).
    pub cwnd_validation: bool,
    /// Congestion-avoidance increase rule.
    pub algorithm: CcAlgorithm,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: DEFAULT_MSS,
            init_cwnd_segments: 10,
            rwnd_bytes: 4 * 1024 * 1024,
            delayed_ack: true,
            delack_timeout: SimDuration::from_millis(40),
            cwnd_validation: true,
            algorithm: CcAlgorithm::Reno,
        }
    }
}

/// Connection state (handshake-centric; teardown is tracked by flags).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TcpState {
    /// Not yet started.
    Closed,
    /// Passive open, waiting for a SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Handshake complete; data flows.
    Established,
}

impl TcpState {
    /// Stable name used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            TcpState::Closed => "Closed",
            TcpState::Listen => "Listen",
            TcpState::SynSent => "SynSent",
            TcpState::SynRcvd => "SynRcvd",
            TcpState::Established => "Established",
        }
    }
}

/// A contiguous run of payload delivered in order to the application (or to
/// the MPTCP reassembly layer above).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeliveredRange {
    /// Subflow sequence of the first byte.
    pub seq: u64,
    /// Length in bytes.
    pub len: u32,
}

/// What [`TcpEndpoint::on_segment`] observed.
#[derive(Clone, Debug, Default)]
pub struct SegmentOutcome {
    /// Payload newly delivered in order by this segment (including any
    /// out-of-order backlog it unlocked).
    pub delivered: Vec<DeliveredRange>,
    /// An MP_PRIO option arrived: the peer asks that this subflow be
    /// treated as backup (`true`) or normal (`false`).
    pub mp_prio: Option<bool>,
    /// The handshake completed during this call.
    pub established_now: bool,
    /// The peer's FIN has now been fully received.
    pub fin_received: bool,
}

#[derive(Clone, Copy, Debug)]
struct SentSeg {
    payload: u32,
    syn: bool,
    fin: bool,
    ts: SimTime,
    retransmitted: bool,
    /// Selectively acknowledged (RFC 2018): delivered but not yet covered
    /// by the cumulative ack.
    sacked: bool,
    /// Deemed lost (RFC 6675 IsLost): excluded from the pipe estimate
    /// until retransmitted.
    lost: bool,
}

impl SentSeg {
    fn space(&self) -> u64 {
        self.payload as u64 + self.syn as u64 + self.fin as u64
    }
}

/// One side of a TCP (sub)flow.
#[derive(Clone, Debug)]
pub struct TcpEndpoint {
    cfg: TcpConfig,
    state: TcpState,

    // --- send side ---
    snd_una: u64,
    snd_nxt: u64,
    app_bytes: u64,
    fin_queued: bool,
    fin_sent: bool,
    inflight: BTreeMap<u64, SentSeg>,
    /// Sequences awaiting retransmission, in sequence order.
    retx_queue: BTreeSet<u64>,
    cc: CongestionCtrl,
    rtt: RttEstimator,
    rto_deadline: Option<SimTime>,
    dupacks: u32,
    recovery_high: Option<u64>,
    /// Bytes currently SACKed (subtracted from the pipe estimate).
    sacked_bytes: u64,
    /// Bytes deemed lost and not yet retransmitted (also excluded from
    /// the pipe).
    lost_bytes: u64,
    /// Highest sequence covered by any SACK block seen this recovery.
    high_sacked: u64,
    peer_rwnd: u64,
    last_send_time: SimTime,
    syn_sent_at: Option<SimTime>,
    bytes_acked_total: u64,
    retransmissions: u64,
    timeouts: u64,

    // --- receive side ---
    rcv_nxt: u64,
    /// Out-of-order payload, coalesced: `start -> end` (exclusive).
    ooo: BTreeMap<u64, u64>,
    ooo_bytes: u64,
    fin_rcv_seq: Option<u64>,
    fin_received: bool,
    bytes_delivered_total: u64,
    pending_acks: u32,
    delack_deadline: Option<SimTime>,
    ts_to_echo: Option<SimTime>,
    /// Rotation cursor (a sequence number) over the out-of-order ranges
    /// reported in SACK blocks, so successive ACKs cover the whole
    /// scoreboard (real stacks achieve this by reporting the newest block
    /// first; rotation has the same coverage effect).
    sack_cursor: u64,

    // --- emissions & options ---
    out: VecDeque<Segment>,
    pending_mp_prio: Option<bool>,
    last_activity: SimTime,

    // --- observability ---
    scope: TelemetryScope,
    /// Payload bytes first-transmitted (excludes retransmissions); the
    /// `acked ≤ sent` conservation invariant compares against this.
    bytes_sent_total: u64,
    /// Last cwnd/ssthresh reported to the trace, for coalescing.
    last_traced_cwnd: u64,
    last_traced_ssthresh: u64,
}

impl TcpEndpoint {
    fn new(cfg: TcpConfig, state: TcpState) -> Self {
        TcpEndpoint {
            cfg,
            state,
            snd_una: 0,
            snd_nxt: 0,
            app_bytes: 0,
            fin_queued: false,
            fin_sent: false,
            inflight: BTreeMap::new(),
            retx_queue: BTreeSet::new(),
            cc: CongestionCtrl::new(cfg.algorithm, cfg.mss, cfg.init_cwnd_segments),
            rtt: RttEstimator::new(),
            rto_deadline: None,
            dupacks: 0,
            recovery_high: None,
            sacked_bytes: 0,
            lost_bytes: 0,
            high_sacked: 0,
            peer_rwnd: 64 * 1024,
            last_send_time: SimTime::ZERO,
            syn_sent_at: None,
            bytes_acked_total: 0,
            retransmissions: 0,
            timeouts: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            fin_rcv_seq: None,
            fin_received: false,
            bytes_delivered_total: 0,
            pending_acks: 0,
            delack_deadline: None,
            ts_to_echo: None,
            sack_cursor: 0,
            out: VecDeque::new(),
            pending_mp_prio: None,
            last_activity: SimTime::ZERO,
            scope: TelemetryScope::disabled(),
            bytes_sent_total: 0,
            last_traced_cwnd: 0,
            last_traced_ssthresh: 0,
        }
    }

    /// Attach a telemetry scope; events and metrics from this endpoint are
    /// labelled with the scope's connection/subflow ids.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    /// Transition the connection state, tracing the edge.
    fn set_state(&mut self, now: SimTime, to: TcpState) {
        let from = self.state;
        self.state = to;
        self.scope.emit(now, |s| TraceEvent::TcpState {
            conn: s.conn,
            subflow: s.subflow,
            from: from.name(),
            to: to.name(),
        });
    }

    /// Trace a congestion-window change, coalesced to one event per MSS of
    /// cwnd movement (or any ssthresh change) to bound trace volume.
    fn trace_cwnd(&mut self, now: SimTime, reason: &'static str) {
        if !self.scope.enabled() {
            return;
        }
        let cwnd = self.cc.cwnd();
        let ssthresh = self.cc.ssthresh();
        if cwnd.abs_diff(self.last_traced_cwnd) >= self.cfg.mss as u64
            || ssthresh != self.last_traced_ssthresh
        {
            self.last_traced_cwnd = cwnd;
            self.last_traced_ssthresh = ssthresh;
            self.scope.emit(now, |s| TraceEvent::CwndChange {
                conn: s.conn,
                subflow: s.subflow,
                cwnd,
                ssthresh,
                reason,
            });
        }
    }

    /// An active opener; call [`connect`](Self::connect) to start.
    pub fn client(cfg: TcpConfig) -> Self {
        Self::new(cfg, TcpState::Closed)
    }

    /// A passive opener, waiting for a SYN.
    pub fn listener(cfg: TcpConfig) -> Self {
        Self::new(cfg, TcpState::Listen)
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// The configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// RTT estimator (srtt, rto, handshake RTT).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Congestion controller.
    pub fn cc(&self) -> &CongestionCtrl {
        &self.cc
    }

    /// Refresh LIA coupling (forwarded from the MPTCP connection).
    pub fn set_lia(&mut self, alpha: f64, total_cwnd: u64) {
        self.cc.set_lia(alpha, total_cwnd);
    }

    /// Total payload bytes cumulatively acknowledged by the peer.
    pub fn bytes_acked_total(&self) -> u64 {
        self.bytes_acked_total
    }

    /// Total payload bytes delivered in order to the layer above.
    pub fn bytes_delivered_total(&self) -> u64 {
        self.bytes_delivered_total
    }

    /// Total payload bytes transmitted for the first time (retransmissions
    /// excluded). Cumulative ACKed bytes can never exceed this.
    pub fn bytes_sent_total(&self) -> u64 {
        self.bytes_sent_total
    }

    /// Count of retransmitted segments.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Count of retransmission timeouts; the MPTCP layer watches this to
    /// trigger opportunistic reinjection on another subflow.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// First unacknowledged sequence number.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Bytes currently unacknowledged.
    pub fn bytes_in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// RFC 6675-style pipe estimate: unacknowledged bytes minus those the
    /// peer has selectively acknowledged and those deemed lost (lost bytes
    /// re-enter the pipe when retransmitted).
    pub fn pipe(&self) -> u64 {
        self.bytes_in_flight()
            .saturating_sub(self.sacked_bytes)
            .saturating_sub(self.lost_bytes)
    }

    /// Bytes written by the application but not yet sent.
    pub fn send_backlog(&self) -> u64 {
        (1 + self.app_bytes).saturating_sub(self.snd_nxt)
    }

    /// True once our FIN is queued/sent and all data plus FIN are acked and
    /// the peer's FIN arrived.
    pub fn fully_closed(&self) -> bool {
        self.fin_sent && self.inflight.is_empty() && self.fin_received
    }

    /// Peer FIN received.
    pub fn fin_received(&self) -> bool {
        self.fin_received
    }

    /// Last send-or-receive activity; eMPTCP's idle test (§3.5) compares
    /// this against an estimated RTT.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// §3.6 resume tweaks: zero the measured RTT (so the minRTT scheduler
    /// probes this subflow) and disable RFC 2861 cwnd validation (so the
    /// window survives the suspension).
    pub fn prepare_resume(&mut self) {
        self.rtt.reset_for_resume();
        self.cfg.cwnd_validation = false;
    }

    /// Queue an MP_PRIO option onto the next outgoing segment; if nothing
    /// else is pending a pure carrier segment is emitted.
    pub fn send_mp_prio(&mut self, now: SimTime, backup: bool) {
        self.pending_mp_prio = Some(backup);
        // Ensure something leaves soon: schedule a pure ACK carrier.
        if self.out.is_empty() {
            let seg = self.make_ack(now);
            self.out.push_back(seg);
        }
    }

    // ------------------------------------------------------------------
    // application interface
    // ------------------------------------------------------------------

    /// Begin the active open.
    pub fn connect(&mut self, now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "connect() once, from Closed");
        self.set_state(now, TcpState::SynSent);
        self.syn_sent_at = Some(now);
        let mut seg = Segment::empty(now);
        seg.seq = 0;
        seg.flags.syn = true;
        seg.rwnd = self.advertised_rwnd();
        self.inflight.insert(
            0,
            SentSeg {
                payload: 0,
                syn: true,
                fin: false,
                ts: now,
                retransmitted: false,
                sacked: false,
                lost: false,
            },
        );
        self.snd_nxt = 1;
        self.out.push_back(seg);
        self.arm_rto(now);
        self.last_activity = now;
    }

    /// Append `bytes` of application data to the send stream.
    pub fn write(&mut self, bytes: u64) {
        assert!(!self.fin_queued, "write after close");
        self.app_bytes += bytes;
    }

    /// Queue a FIN after all written data.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// True once [`close`](Self::close) was called.
    pub fn fin_queued(&self) -> bool {
        self.fin_queued
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    /// Earliest pending timer, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.delack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire any timers due at `now`.
    pub fn on_deadline(&mut self, now: SimTime) {
        if let Some(d) = self.delack_deadline {
            if now >= d {
                self.delack_deadline = None;
                self.pending_acks = 0;
                let seg = self.make_ack(now);
                self.out.push_back(seg);
            }
        }
        if let Some(d) = self.rto_deadline {
            if now >= d && !self.inflight.is_empty() {
                // Retransmission timeout (RFC 5681 §5): every unacked,
                // un-SACKed segment is presumed lost and re-sent in order,
                // clocked by slow start from one MSS (go-back-N). The
                // once-per-recovery retransmission marks are cleared so a
                // hole whose retransmission is lost again can be requeued.
                self.cc.on_timeout();
                self.rtt.backoff();
                self.timeouts += 1;
                self.scope.emit(now, |s| TraceEvent::RtoFired {
                    conn: s.conn,
                    subflow: s.subflow,
                    rto_ns: self.rtt.rto().as_nanos(),
                });
                self.scope.with_metrics(|s, m| {
                    m.counter_add(&format!("tcp.conn{}.sf{}.rto", s.conn, s.subflow), 1)
                });
                self.trace_cwnd(now, "rto");
                self.dupacks = 0;
                self.recovery_high = None;
                self.high_sacked = 0;
                self.lost_bytes = 0;
                self.retx_queue.clear();
                for (&seq, entry) in self.inflight.iter_mut() {
                    entry.retransmitted = false;
                    entry.lost = !entry.sacked;
                    if entry.lost {
                        self.lost_bytes += entry.space();
                        self.retx_queue.insert(seq);
                    }
                }
                self.arm_rto(now);
            } else if now >= d {
                self.rto_deadline = None;
            }
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = if self.inflight.is_empty() {
            None
        } else {
            Some(now + self.rtt.rto())
        };
    }

    // ------------------------------------------------------------------
    // receive path
    // ------------------------------------------------------------------

    /// Process an arriving segment.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) -> SegmentOutcome {
        let mut outcome = SegmentOutcome {
            mp_prio: seg.mp_prio,
            ..SegmentOutcome::default()
        };
        self.last_activity = now;
        self.peer_rwnd = seg.rwnd;

        match self.state {
            TcpState::Listen => {
                if seg.flags.syn {
                    self.rcv_nxt = 1;
                    self.ts_to_echo = Some(seg.ts_val);
                    self.set_state(now, TcpState::SynRcvd);
                    let mut synack = Segment::empty(now);
                    synack.seq = 0;
                    synack.flags.syn = true;
                    synack.flags.ack = true;
                    synack.ack = 1;
                    synack.ts_ecr = Some(seg.ts_val);
                    synack.rwnd = self.advertised_rwnd();
                    self.inflight.insert(
                        0,
                        SentSeg {
                            payload: 0,
                            syn: true,
                            fin: false,
                            ts: now,
                            retransmitted: false,
                            sacked: false,
                            lost: false,
                        },
                    );
                    self.snd_nxt = 1;
                    self.out.push_back(synack);
                    self.arm_rto(now);
                }
                return outcome;
            }
            TcpState::SynSent => {
                if seg.flags.syn && seg.flags.ack && seg.ack == 1 {
                    self.snd_una = 1;
                    self.inflight.remove(&0);
                    self.rto_deadline = None;
                    self.rcv_nxt = 1;
                    if let Some(sent) = self.syn_sent_at {
                        self.rtt.on_handshake(now.saturating_since(sent));
                    }
                    self.ts_to_echo = Some(seg.ts_val);
                    self.set_state(now, TcpState::Established);
                    outcome.established_now = true;
                    let ack = self.make_ack(now);
                    self.out.push_back(ack);
                }
                return outcome;
            }
            TcpState::SynRcvd => {
                if seg.flags.ack && seg.ack >= 1 {
                    self.snd_una = 1;
                    self.inflight.remove(&0);
                    self.rto_deadline = None;
                    if let Some(sent) = self.inflight_handshake_ts() {
                        let _ = sent; // timestamp echo below is authoritative
                    }
                    if let Some(ecr) = seg.ts_ecr {
                        self.rtt.on_handshake(now.saturating_since(ecr));
                    }
                    self.set_state(now, TcpState::Established);
                    outcome.established_now = true;
                    // Fall through: the completing ACK may carry data.
                } else {
                    return outcome;
                }
            }
            TcpState::Closed => return outcome,
            TcpState::Established => {}
        }

        // --- ACK processing (send side) ---
        if seg.flags.ack {
            self.process_ack(now, &seg);
        }

        // --- data processing (receive side) ---
        if seg.seq_space() > 0 {
            self.process_data(now, &seg, &mut outcome);
        }
        outcome.fin_received = self.fin_received;
        outcome
    }

    fn inflight_handshake_ts(&self) -> Option<SimTime> {
        self.inflight.get(&0).map(|s| s.ts)
    }

    /// Mark inflight segments covered by the ACK's SACK blocks.
    fn apply_sack(&mut self, seg: &Segment) {
        for block in seg.sack.iter().flatten() {
            let (start, end) = *block;
            self.high_sacked = self.high_sacked.max(end);
            let to_mark: Vec<u64> = self
                .inflight
                .range(start..end)
                .filter(|(&s, e)| !e.sacked && s + e.space() <= end)
                .map(|(&s, _)| s)
                .collect();
            for s in to_mark {
                if let Some(e) = self.inflight.get_mut(&s) {
                    e.sacked = true;
                    self.sacked_bytes += e.space();
                    if e.lost {
                        e.lost = false;
                        self.lost_bytes -= e.space();
                    }
                }
            }
        }
    }

    /// Queue every un-SACKed hole below the highest SACKed sequence for
    /// retransmission (the core of SACK-based loss recovery).
    fn queue_sack_holes(&mut self) {
        let high = self.high_sacked;
        // Each hole is retransmitted at most once per recovery; a
        // retransmission that is itself lost falls back to the RTO.
        let holes: Vec<u64> = self
            .inflight
            .range(..high)
            .filter(|(_, e)| !e.sacked && !e.retransmitted)
            .map(|(&s, _)| s)
            .collect();
        for s in holes {
            if self.retx_queue.insert(s) {
                if let Some(e) = self.inflight.get_mut(&s) {
                    if !e.lost {
                        e.lost = true;
                        self.lost_bytes += e.space();
                    }
                }
            }
        }
    }

    fn enter_recovery(&mut self, now: SimTime) {
        self.cc.on_fast_retransmit();
        self.trace_cwnd(now, "fast_retransmit");
        self.recovery_high = Some(self.snd_nxt);
        if self.high_sacked > self.snd_una {
            self.queue_sack_holes();
        } else if let Some(e) = self.inflight.get_mut(&self.snd_una) {
            if !e.lost {
                e.lost = true;
                self.lost_bytes += e.space();
            }
            self.retx_queue.insert(self.snd_una);
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        self.apply_sack(seg);
        if seg.ack > self.snd_una {
            let newly_acked = seg.ack - self.snd_una;
            // Drop fully-acked segments from the retransmission store with a
            // single tree split. Inflight segments never overlap, so of the
            // detached entries only the last can straddle the ACK point; it
            // stays inflight and goes back in.
            let mut acked = {
                let keep = self.inflight.split_off(&seg.ack);
                std::mem::replace(&mut self.inflight, keep)
            };
            if let Some((&s, e)) = acked.last_key_value() {
                if s + e.space() > seg.ack {
                    let (s, e) = acked.pop_last().expect("entry just observed");
                    self.inflight.insert(s, e);
                }
            }
            let mut payload_acked = 0u64;
            for e in acked.values() {
                payload_acked += e.payload as u64;
                if e.sacked {
                    self.sacked_bytes -= e.space();
                }
                if e.lost {
                    self.lost_bytes -= e.space();
                }
            }
            self.snd_una = seg.ack;
            self.bytes_acked_total += payload_acked;
            self.dupacks = 0;
            self.retx_queue = self.retx_queue.split_off(&seg.ack);

            // RTT sample via timestamp echo.
            if let Some(ecr) = seg.ts_ecr {
                let sample = now.saturating_since(ecr);
                self.rtt.on_sample(sample);
                self.scope.with_metrics(|s, m| {
                    m.observe(
                        &format!("tcp.conn{}.sf{}.rtt_ms", s.conn, s.subflow),
                        sample.as_millis_f64(),
                    )
                });
            }

            match self.recovery_high {
                Some(high) if seg.ack < high => {
                    // Partial ACK during recovery: fill the remaining holes
                    // (SACK-guided if blocks were seen, else the next hole)
                    // without growing the window.
                    if self.high_sacked > self.snd_una {
                        self.queue_sack_holes();
                    } else if self.inflight.contains_key(&self.snd_una) {
                        self.retx_queue.insert(self.snd_una);
                    }
                }
                Some(_) => {
                    self.recovery_high = None;
                    self.high_sacked = 0;
                    self.cc.on_ack(newly_acked);
                }
                None => {
                    self.cc.on_ack(newly_acked);
                }
            }
            self.trace_cwnd(now, "ack");
            self.arm_rto(now);
        } else if seg.ack == self.snd_una && !self.inflight.is_empty() && seg.is_pure_ack() {
            self.dupacks += 1;
            // RFC 6675: enter recovery on three dupacks or once SACK shows
            // more than three segments' worth of out-of-order delivery.
            let sack_trigger = self.sacked_bytes > 3 * self.cfg.mss as u64;
            if self.recovery_high.is_none() && (self.dupacks >= 3 || sack_trigger) {
                self.enter_recovery(now);
            } else if self.recovery_high.is_some() && self.high_sacked > self.snd_una {
                // More SACK information arrived mid-recovery.
                self.queue_sack_holes();
            }
        }
    }

    fn process_data(&mut self, now: SimTime, seg: &Segment, outcome: &mut SegmentOutcome) {
        if seg.flags.fin {
            self.fin_rcv_seq = Some(seg.seq + seg.payload as u64);
        }
        let seg_end = seg.seq_end();
        if seg_end <= self.rcv_nxt {
            // Stale duplicate: re-ACK immediately so the peer converges.
            self.ts_to_echo = Some(seg.ts_val);
            let ack = self.make_ack(now);
            self.out.push_back(ack);
            return;
        }
        if seg.seq == self.rcv_nxt {
            self.ts_to_echo = Some(seg.ts_val);
            let had_ooo = !self.ooo.is_empty();
            if seg.payload > 0 {
                outcome.delivered.push(DeliveredRange {
                    seq: seg.seq,
                    len: seg.payload,
                });
                self.bytes_delivered_total += seg.payload as u64;
            }
            // Advance past the payload only; the FIN (if any) is consumed
            // below once the stream is contiguous up to it.
            self.rcv_nxt = seg.seq + seg.payload as u64;
            // Drain any out-of-order backlog now contiguous.
            while let Some((&s, &end)) = self.ooo.first_key_value() {
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&s);
                self.ooo_bytes -= end - s;
                if end > self.rcv_nxt {
                    let fresh = (end - self.rcv_nxt) as u32;
                    outcome.delivered.push(DeliveredRange {
                        seq: self.rcv_nxt,
                        len: fresh,
                    });
                    self.bytes_delivered_total += fresh as u64;
                    self.rcv_nxt = end;
                }
            }
            // FIN consumption.
            if let Some(fs) = self.fin_rcv_seq {
                if self.rcv_nxt == fs {
                    self.rcv_nxt += 1;
                    self.fin_received = true;
                }
            }
            // Filling a hole must be acknowledged at once (RFC 5681 §4.2) so
            // the sender exits recovery promptly.
            if had_ooo {
                self.pending_acks = 0;
                self.delack_deadline = None;
                let ack = self.make_ack(now);
                self.out.push_back(ack);
            } else {
                self.schedule_ack(now, seg.payload);
            }
        } else {
            // Out of order: buffer (coalescing) and send an immediate
            // duplicate ACK.
            if seg.payload > 0 {
                self.insert_ooo(seg.seq, seg.seq + seg.payload as u64);
            }
            let ack = self.make_ack(now);
            self.out.push_back(ack);
        }
    }

    /// Insert `[start, end)` into the coalesced out-of-order store.
    fn insert_ooo(&mut self, mut start: u64, mut end: u64) {
        debug_assert!(start < end);
        // Absorb any range beginning at or before `start` that reaches it.
        if let Some((&ps, &pe)) = self.ooo.range(..=start).next_back() {
            if pe >= start {
                if pe >= end {
                    return; // fully covered
                }
                self.ooo.remove(&ps);
                self.ooo_bytes -= pe - ps;
                start = ps;
            }
        }
        // Absorb following ranges that overlap or touch.
        while let Some((&ns, &ne)) = self.ooo.range(start..).next() {
            if ns > end {
                break;
            }
            self.ooo.remove(&ns);
            self.ooo_bytes -= ne - ns;
            end = end.max(ne);
        }
        self.ooo.insert(start, end);
        self.ooo_bytes += end - start;
    }

    fn schedule_ack(&mut self, now: SimTime, _payload: u32) {
        self.pending_acks += 1;
        let force = !self.cfg.delayed_ack
            || self.pending_acks >= 2
            || self.fin_received
            || self.state != TcpState::Established;
        if force {
            self.pending_acks = 0;
            self.delack_deadline = None;
            let ack = self.make_ack(now);
            self.out.push_back(ack);
        } else if self.delack_deadline.is_none() {
            self.delack_deadline = Some(now + self.cfg.delack_timeout);
        }
    }

    fn advertised_rwnd(&self) -> u64 {
        self.cfg.rwnd_bytes.saturating_sub(self.ooo_bytes)
    }

    /// Pick three SACK ranges from the (already coalesced) out-of-order
    /// store, rotating a sequence-number cursor across ACKs so the sender's
    /// scoreboard converges even when the store holds many more ranges than
    /// fit in the option space.
    fn sack_blocks(&mut self) -> [Option<(u64, u64)>; 3] {
        let mut blocks: [Option<(u64, u64)>; 3] = [None; 3];
        if self.ooo.is_empty() {
            return blocks;
        }
        let mut cursor = self.sack_cursor;
        for i in 0..3 {
            let next = self
                .ooo
                .range(cursor..)
                .next()
                .or_else(|| self.ooo.iter().next())
                .map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) => {
                    // Wrapped onto a range already picked: fewer than three
                    // distinct ranges exist.
                    if blocks.iter().flatten().any(|&(bs, _)| bs == s) {
                        break;
                    }
                    blocks[i] = Some((s, e));
                    cursor = e + 1;
                }
                None => break,
            }
        }
        self.sack_cursor = cursor;
        blocks
    }

    fn make_ack(&mut self, now: SimTime) -> Segment {
        let mut seg = Segment::empty(now);
        seg.seq = self.snd_nxt;
        seg.flags.ack = true;
        seg.ack = self.rcv_nxt;
        seg.rwnd = self.advertised_rwnd();
        seg.ts_ecr = self.ts_to_echo;
        seg.sack = self.sack_blocks();
        seg
    }

    // ------------------------------------------------------------------
    // transmit path
    // ------------------------------------------------------------------

    /// Next segment to put on the wire, or `None` when the endpoint has
    /// nothing (sendable) pending. Call repeatedly after every event.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Segment> {
        // 1. Queued control segments (ACKs, handshake).
        if let Some(mut seg) = self.out.pop_front() {
            seg.rwnd = self.advertised_rwnd();
            if seg.mp_prio.is_none() {
                seg.mp_prio = self.pending_mp_prio.take();
            }
            return Some(seg);
        }
        // 2. Retransmissions — including SYN/SYN-ACK retransmissions while
        //    the handshake is still in flight. The first hole always goes
        //    out; the rest respect the SACK pipe so a large recovery
        //    doesn't re-burst into the bottleneck queue.
        while let Some(seq) = self.retx_queue.pop_first() {
            if seq < self.snd_una {
                continue;
            }
            if self.inflight.get(&seq).is_some_and(|e| e.sacked) {
                continue;
            }
            if seq > self.snd_una && self.pipe() >= self.cc.cwnd() {
                self.retx_queue.insert(seq);
                break;
            }
            if let Some(entry) = self.inflight.get_mut(&seq) {
                entry.retransmitted = true;
                if entry.lost {
                    entry.lost = false;
                    self.lost_bytes -= entry.space();
                }
                entry.ts = now;
                let mut seg = Segment::empty(now);
                seg.seq = seq;
                seg.payload = entry.payload;
                seg.flags.syn = entry.syn;
                seg.flags.fin = entry.fin;
                seg.flags.ack = true;
                seg.ack = self.rcv_nxt;
                seg.rwnd = self.advertised_rwnd();
                seg.ts_ecr = self.ts_to_echo;
                seg.retransmit = true;
                seg.mp_prio = self.pending_mp_prio.take();
                self.retransmissions += 1;
                if self.scope.enabled() {
                    let kind = if self.recovery_high.is_some() {
                        "fast"
                    } else {
                        "rto"
                    };
                    let (seq_out, len) = (seg.seq, seg.payload);
                    self.scope.emit(now, |s| TraceEvent::Retransmit {
                        conn: s.conn,
                        subflow: s.subflow,
                        seq: seq_out,
                        len,
                        kind,
                    });
                    self.scope.with_metrics(|s, m| {
                        m.counter_add(
                            &format!("tcp.conn{}.sf{}.retransmits", s.conn, s.subflow),
                            1,
                        )
                    });
                }
                self.last_send_time = now;
                self.last_activity = now;
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                return Some(seg);
            }
        }

        if self.state != TcpState::Established {
            return None;
        }

        // 3. New data, within min(cwnd, peer window).
        self.maybe_validate_cwnd(now);
        let stream_end = 1 + self.app_bytes;
        let window = self.cc.cwnd().min(self.peer_rwnd);
        let in_flight = self.pipe();
        let can_send_fin = self.fin_queued && !self.fin_sent && self.snd_nxt == stream_end;
        if self.snd_nxt < stream_end || can_send_fin {
            if in_flight >= window && !can_send_fin {
                return None;
            }
            let budget = window.saturating_sub(in_flight);
            let available = stream_end - self.snd_nxt;
            let payload = available.min(self.cfg.mss as u64).min(budget) as u32;
            let fin_now =
                self.fin_queued && !self.fin_sent && self.snd_nxt + payload as u64 == stream_end;
            if payload == 0 && !fin_now {
                return None;
            }
            let mut seg = Segment::empty(now);
            seg.seq = self.snd_nxt;
            seg.payload = payload;
            seg.flags.ack = true;
            seg.flags.fin = fin_now;
            seg.ack = self.rcv_nxt;
            seg.rwnd = self.advertised_rwnd();
            seg.ts_ecr = self.ts_to_echo;
            seg.mp_prio = self.pending_mp_prio.take();
            self.inflight.insert(
                self.snd_nxt,
                SentSeg {
                    payload,
                    syn: false,
                    fin: fin_now,
                    ts: now,
                    retransmitted: false,
                    sacked: false,
                    lost: false,
                },
            );
            self.snd_nxt += seg.seq_space();
            self.bytes_sent_total += payload as u64;
            if fin_now {
                self.fin_sent = true;
            }
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
            self.last_send_time = now;
            self.last_activity = now;
            return Some(seg);
        }
        None
    }

    fn maybe_validate_cwnd(&mut self, now: SimTime) {
        if !self.cfg.cwnd_validation || !self.inflight.is_empty() {
            return;
        }
        let idle = now.saturating_since(self.last_send_time.max(self.last_activity));
        let rto = self.rtt.rto();
        if self.last_send_time > SimTime::ZERO && idle > rto {
            let periods = (idle.as_nanos() / rto.as_nanos().max(1)).min(u32::MAX as u64);
            self.cc.restart_after_idle(periods as u32);
            // Don't re-trigger until there's new activity.
            self.last_send_time = now;
        }
    }

    /// Replay the clock-driven side effect of a [`poll_transmit`] pass
    /// that comes up empty: RFC 2861 idle validation, which an empty pass
    /// reaches only once the connection is established. Lets a caller that
    /// knows the endpoint has nothing to say skip the full transmit walk
    /// without perturbing the idle-restart schedule.
    ///
    /// [`poll_transmit`]: Self::poll_transmit
    pub fn idle_tick(&mut self, now: SimTime) {
        if self.state == TcpState::Established {
            self.maybe_validate_cwnd(now);
        }
    }

    /// Allow the host (MPTCP layer) to toggle RFC 2861 validation.
    pub fn set_cwnd_validation(&mut self, enabled: bool) {
        self.cfg.cwnd_validation = enabled;
    }
}

/// The endpoint's only clock-coupled side effect is RFC 2861 idle
/// validation; both the simulator's quiescence fast path and the live
/// reactor's wall ticks land here.
impl emptcp_sim::Clocked for TcpEndpoint {
    fn clock_tick(&mut self, now: SimTime) {
        self.idle_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deliver every pending segment of `from` into `to`, stepping time by
    /// `half_rtt` per direction; returns segments moved.
    fn pump(
        now: &mut SimTime,
        half_rtt: SimDuration,
        from: &mut TcpEndpoint,
        to: &mut TcpEndpoint,
    ) -> usize {
        let mut moved = 0;
        from.on_deadline(*now);
        let mut segs = Vec::new();
        while let Some(seg) = from.poll_transmit(*now) {
            segs.push(seg);
        }
        *now += half_rtt;
        to.on_deadline(*now);
        for seg in segs {
            to.on_segment(*now, seg);
            moved += 1;
        }
        moved
    }

    fn handshake(now: &mut SimTime, client: &mut TcpEndpoint, server: &mut TcpEndpoint) {
        let half = SimDuration::from_millis(10);
        client.connect(*now);
        pump(now, half, client, server); // SYN
        pump(now, half, server, client); // SYN-ACK
        pump(now, half, client, server); // ACK
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(server.state(), TcpState::Established);
    }

    #[test]
    fn three_way_handshake() {
        let mut now = SimTime::ZERO;
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        // Handshake RTT (20 ms round trip) recorded at the client.
        let hs = c.rtt().handshake_rtt().unwrap();
        assert_eq!(hs, SimDuration::from_millis(20));
        assert!(s.rtt().handshake_rtt().is_some());
    }

    #[test]
    fn bulk_transfer_delivers_everything() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(10);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);

        let total: u64 = 1_000_000;
        s.write(total);
        let mut delivered = 0u64;
        for _ in 0..200 {
            s.on_deadline(now);
            c.on_deadline(now);
            let mut segs = Vec::new();
            while let Some(seg) = s.poll_transmit(now) {
                segs.push(seg);
            }
            now += half;
            for seg in segs {
                let out = c.on_segment(now, seg);
                delivered += out.delivered.iter().map(|r| r.len as u64).sum::<u64>();
            }
            pump(&mut now, half, &mut c, &mut s); // ACKs back
            if delivered == total {
                break;
            }
        }
        // Flush the final delayed ACK.
        now += SimDuration::from_millis(50);
        pump(&mut now, half, &mut c, &mut s);
        assert_eq!(delivered, total);
        assert_eq!(c.bytes_delivered_total(), total);
        assert_eq!(s.bytes_acked_total(), total);
        assert_eq!(s.retransmissions(), 0);
    }

    #[test]
    fn slow_start_growth_visible() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(10);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(10_000_000);
        let w0 = s.cc().cwnd();
        for _ in 0..6 {
            pump(&mut now, half, &mut s, &mut c);
            pump(&mut now, half, &mut c, &mut s);
        }
        assert!(s.cc().cwnd() > 4 * w0, "cwnd didn't grow in slow start");
    }

    #[test]
    fn fast_retransmit_recovers_single_loss() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(200_000);

        let mut first_data = true;
        let mut delivered = 0u64;
        for _round in 0..400 {
            s.on_deadline(now);
            c.on_deadline(now);
            let mut segs = Vec::new();
            while let Some(seg) = s.poll_transmit(now) {
                segs.push(seg);
            }
            now += half;
            for seg in segs {
                if first_data && seg.payload > 0 {
                    first_data = false; // drop the very first data segment
                    continue;
                }
                let out = c.on_segment(now, seg);
                delivered += out.delivered.iter().map(|r| r.len as u64).sum::<u64>();
            }
            pump(&mut now, half, &mut c, &mut s);
            if delivered == 200_000 {
                break;
            }
        }
        assert_eq!(delivered, 200_000);
        assert!(s.retransmissions() >= 1);
    }

    #[test]
    fn rto_recovers_total_blackout_of_window() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(20_000);

        // Drop the entire first flight.
        while s.poll_transmit(now).is_some() {}
        // Let the RTO fire.
        let deadline = s.next_deadline().expect("rto armed");
        now = deadline;
        s.on_deadline(now);
        let mut delivered = 0u64;
        for _ in 0..400 {
            s.on_deadline(now);
            c.on_deadline(now);
            let mut segs = Vec::new();
            while let Some(seg) = s.poll_transmit(now) {
                segs.push(seg);
            }
            now += half;
            for seg in segs {
                let out = c.on_segment(now, seg);
                delivered += out.delivered.iter().map(|r| r.len as u64).sum::<u64>();
            }
            pump(&mut now, half, &mut c, &mut s);
            if delivered == 20_000 {
                break;
            }
            // Fire timers if the connection stalls.
            if let Some(d) = s.next_deadline() {
                if d > now {
                    now = d;
                }
                s.on_deadline(now);
            }
        }
        assert_eq!(delivered, 20_000);
        assert!(s.retransmissions() >= 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(5 * 1428);
        let mut segs = Vec::new();
        while let Some(seg) = s.poll_transmit(now) {
            segs.push(seg);
        }
        assert!(segs.len() >= 3);
        segs.reverse(); // deliver in reverse order
        now += half;
        let mut delivered = 0u64;
        for seg in segs {
            let out = c.on_segment(now, seg);
            delivered += out.delivered.iter().map(|r| r.len as u64).sum::<u64>();
        }
        assert_eq!(delivered, 5 * 1428);
    }

    #[test]
    fn fin_closes_cleanly() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(1000);
        s.close();
        c.close();
        for _ in 0..20 {
            pump(&mut now, half, &mut s, &mut c);
            pump(&mut now, half, &mut c, &mut s);
        }
        assert!(c.fin_received());
        assert_eq!(c.bytes_delivered_total(), 1000);
        assert!(s.fully_closed());
    }

    #[test]
    fn mp_prio_rides_next_segment() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        c.send_mp_prio(now, true);
        let seg = c.poll_transmit(now).expect("carrier segment");
        assert_eq!(seg.mp_prio, Some(true));
        now += half;
        let out = s.on_segment(now, seg);
        assert_eq!(out.mp_prio, Some(true));
    }

    /// Run a 500 kB transfer and stop the instant everything is acked,
    /// returning the grown congestion window.
    fn transfer_until_acked(
        now: &mut SimTime,
        c: &mut TcpEndpoint,
        s: &mut TcpEndpoint,
        total: u64,
    ) -> u64 {
        let half = SimDuration::from_millis(10);
        s.write(total);
        for _ in 0..500 {
            pump(now, half, s, c);
            pump(now, half, c, s);
            if s.bytes_acked_total() == total {
                break;
            }
        }
        assert_eq!(s.bytes_acked_total(), total, "transfer must finish");
        s.cc().cwnd()
    }

    #[test]
    fn cwnd_validation_resets_after_idle() {
        let mut now = SimTime::ZERO;
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        let grown = transfer_until_acked(&mut now, &mut c, &mut s, 500_000);
        assert!(grown > s.cc().initial_cwnd());
        // Idle for much longer than the RTO, then offer new data.
        now += SimDuration::from_secs(30);
        s.write(1428);
        let _ = s.poll_transmit(now);
        assert_eq!(s.cc().cwnd(), s.cc().initial_cwnd(), "cwnd restarted");
    }

    #[test]
    fn resume_disables_validation_and_zeroes_rtt() {
        let mut now = SimTime::ZERO;
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        let grown = transfer_until_acked(&mut now, &mut c, &mut s, 500_000);
        assert!(grown > s.cc().initial_cwnd());
        s.prepare_resume();
        assert_eq!(s.rtt().srtt_or_zero(), SimDuration::ZERO);
        now += SimDuration::from_secs(30);
        s.write(1428);
        let _ = s.poll_transmit(now);
        assert_eq!(s.cc().cwnd(), grown, "cwnd preserved across idle");
    }

    #[test]
    fn receiver_window_respected() {
        let mut now = SimTime::ZERO;
        let _half = SimDuration::from_millis(10);
        let cfg_small = TcpConfig {
            rwnd_bytes: 10_000,
            ..TcpConfig::default()
        };
        let mut c = TcpEndpoint::client(cfg_small);
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(1_000_000);
        let mut burst = 0u64;
        while let Some(seg) = s.poll_transmit(now) {
            burst += seg.payload as u64;
        }
        assert!(
            burst <= 10_000 + 1428,
            "sender overran peer window: {burst}"
        );
    }

    #[test]
    fn delayed_ack_coalesces() {
        let mut now = SimTime::ZERO;
        let cfg = TcpConfig {
            delayed_ack: true,
            ..TcpConfig::default()
        };
        let mut c = TcpEndpoint::client(cfg);
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        let half = SimDuration::from_millis(5);
        handshake(&mut now, &mut c, &mut s);
        s.write(2 * 1428);
        let mut segs = Vec::new();
        while let Some(seg) = s.poll_transmit(now) {
            segs.push(seg);
        }
        now += half;
        for seg in segs {
            c.on_segment(now, seg);
        }
        // Two full segments ⇒ exactly one ACK.
        let mut acks = 0;
        while let Some(seg) = c.poll_transmit(now) {
            assert!(seg.is_pure_ack());
            acks += 1;
        }
        assert_eq!(acks, 1);
    }

    /// Drive a transfer where a known run of segments is dropped, then
    /// inspect the SACK-level mechanics directly.
    #[test]
    fn sack_blocks_report_coalesced_ranges() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(8 * 1428);
        let mut segs = Vec::new();
        while let Some(seg) = s.poll_transmit(now) {
            segs.push(seg);
        }
        assert_eq!(segs.len(), 8);
        now += half;
        // Deliver segments 2,3 and 6 only: two out-of-order islands.
        for idx in [2usize, 3, 6] {
            c.on_segment(now, segs[idx]);
        }
        // One duplicate ACK per out-of-order arrival; the last one carries
        // the complete picture.
        let mut last_ack = None;
        while let Some(a) = c.poll_transmit(now) {
            last_ack = Some(a);
        }
        let ack = last_ack.expect("dup acks");
        let mut blocks: Vec<(u64, u64)> = ack.sack.iter().flatten().copied().collect();
        blocks.sort_unstable();
        // Segments 2..=3 coalesce into one block; 6 stands alone. (The
        // rotation cursor means the on-wire order varies.)
        assert_eq!(
            blocks,
            vec![(1 + 2 * 1428, 1 + 4 * 1428), (1 + 6 * 1428, 1 + 7 * 1428)]
        );
    }

    #[test]
    fn sack_marks_and_pipe_shrink() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(6 * 1428);
        let mut segs = Vec::new();
        while let Some(seg) = s.poll_transmit(now) {
            segs.push(seg);
        }
        let inflight = s.bytes_in_flight();
        assert_eq!(s.pipe(), inflight);
        now += half;
        // Lose segment 0; deliver 1..=5.
        for seg in &segs[1..] {
            c.on_segment(now, *seg);
        }
        let mut acks = Vec::new();
        while let Some(a) = c.poll_transmit(now) {
            acks.push(a);
        }
        now += half;
        for a in acks {
            s.on_segment(now, a);
        }
        // Everything but the lost head is SACKed; recovery marked the head
        // lost, so the pipe excludes both.
        assert!(s.pipe() < inflight / 3, "pipe {} of {}", s.pipe(), inflight);
        assert!(
            s.bytes_in_flight() == inflight,
            "cumulative ack must not move"
        );
    }

    #[test]
    fn sack_recovery_retransmits_only_the_hole() {
        let mut now = SimTime::ZERO;
        let half = SimDuration::from_millis(5);
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        handshake(&mut now, &mut c, &mut s);
        s.write(6 * 1428);
        let mut segs = Vec::new();
        while let Some(seg) = s.poll_transmit(now) {
            segs.push(seg);
        }
        now += half;
        for seg in &segs[1..] {
            c.on_segment(now, *seg);
        }
        let mut acks = Vec::new();
        while let Some(a) = c.poll_transmit(now) {
            acks.push(a);
        }
        now += half;
        for a in acks {
            s.on_segment(now, a);
        }
        // The retransmission must be exactly the missing head segment.
        let retx = s.poll_transmit(now).expect("hole retransmission");
        assert!(retx.retransmit);
        assert_eq!(retx.seq, segs[0].seq);
        assert_eq!(retx.payload, segs[0].payload);
        // And nothing else needs retransmitting.
        let next = s.poll_transmit(now);
        assert!(
            next.is_none() || !next.unwrap().retransmit,
            "spurious extra retransmission"
        );
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn single_segment_ack_is_delayed_until_timer() {
        let mut now = SimTime::ZERO;
        let mut c = TcpEndpoint::client(TcpConfig::default());
        let mut s = TcpEndpoint::listener(TcpConfig::default());
        let half = SimDuration::from_millis(5);
        handshake(&mut now, &mut c, &mut s);
        s.write(100);
        let seg = s.poll_transmit(now).unwrap();
        now += half;
        c.on_segment(now, seg);
        assert!(c.poll_transmit(now).is_none(), "ack must be delayed");
        let d = c.next_deadline().expect("delack timer armed");
        c.on_deadline(d);
        let ack = c.poll_transmit(d).expect("delayed ack fires");
        assert!(ack.is_pure_ack());
    }
}
