//! Congestion control: Reno and the MPTCP Linked-Increases Algorithm (LIA).
//!
//! The congestion window is kept in bytes. Reno (RFC 5681) drives
//! single-path TCP; LIA (RFC 6356) couples the increase of MPTCP subflows:
//! per ACK on subflow *i*,
//! `cwnd_i += min(alpha * acked * mss / cwnd_total, acked * mss / cwnd_i)`,
//! with `alpha` recomputed across subflows by the MPTCP connection (the
//! `emptcp-mptcp` crate) and injected via [`CongestionCtrl::set_lia`].
//! Decrease behaviour (halving on fast retransmit, collapse on RTO) is
//! uncoupled, exactly as in LIA.

use serde::{Deserialize, Serialize};

/// Which increase rule the window follows in congestion avoidance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CcAlgorithm {
    /// Standard Reno (single-path, and the per-subflow baseline).
    Reno,
    /// MPTCP coupled increases (RFC 6356).
    Lia,
}

/// Per-flow congestion-control state.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CongestionCtrl {
    algorithm: CcAlgorithm,
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    initial_cwnd: u64,
    /// LIA coupling: the connection-wide `alpha` and total cwnd, refreshed
    /// by the MPTCP layer.
    lia_alpha: f64,
    lia_total_cwnd: u64,
    /// Byte accumulator for sub-MSS congestion-avoidance increases.
    increase_credit_bytes: f64,
}

impl CongestionCtrl {
    /// A fresh window: `init_segments * mss`, effectively unbounded ssthresh.
    pub fn new(algorithm: CcAlgorithm, mss: u32, init_segments: u32) -> Self {
        let initial_cwnd = mss as u64 * init_segments as u64;
        CongestionCtrl {
            algorithm,
            mss,
            cwnd: initial_cwnd,
            ssthresh: u64::MAX,
            initial_cwnd,
            lia_alpha: 1.0,
            lia_total_cwnd: initial_cwnd,
            increase_credit_bytes: 0.0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// The configured MSS.
    pub fn mss(&self) -> u32 {
        self.mss
    }

    /// Refresh the LIA coupling parameters (no-op under Reno).
    pub fn set_lia(&mut self, alpha: f64, total_cwnd: u64) {
        self.lia_alpha = alpha.max(0.0);
        self.lia_total_cwnd = total_cwnd.max(self.mss as u64);
    }

    /// Bytes newly acknowledged.
    pub fn on_ack(&mut self, acked_bytes: u64) {
        if self.in_slow_start() {
            // Classic exponential growth, capped at ssthresh crossing.
            self.cwnd = (self.cwnd + acked_bytes).min(self.ssthresh.max(self.cwnd));
            return;
        }
        let mss = self.mss as f64;
        let increase = match self.algorithm {
            CcAlgorithm::Reno => acked_bytes as f64 * mss / self.cwnd as f64,
            CcAlgorithm::Lia => {
                let coupled =
                    self.lia_alpha * acked_bytes as f64 * mss / self.lia_total_cwnd as f64;
                let solo = acked_bytes as f64 * mss / self.cwnd as f64;
                coupled.min(solo)
            }
        };
        self.increase_credit_bytes += increase;
        if self.increase_credit_bytes >= 1.0 {
            let whole = self.increase_credit_bytes.floor();
            self.cwnd += whole as u64;
            self.increase_credit_bytes -= whole;
        }
    }

    /// Loss detected by fast retransmit: multiplicative decrease.
    pub fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.ssthresh;
        self.increase_credit_bytes = 0.0;
    }

    /// Retransmission timeout: collapse to one segment.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss as u64);
        self.cwnd = self.mss as u64;
        self.increase_credit_bytes = 0.0;
    }

    /// RFC 2861 congestion-window validation after an idle period: the
    /// window is halved once per RTO of idleness, flooring at the initial
    /// window (ssthresh is preserved so the flow re-probes quickly).
    /// eMPTCP *disables* this for resumed subflows.
    pub fn restart_after_idle(&mut self, idle_rto_periods: u32) {
        let halvings = idle_rto_periods.min(63);
        self.cwnd = (self.cwnd >> halvings).max(self.initial_cwnd);
        self.increase_credit_bytes = 0.0;
    }

    /// The initial window in bytes (used by eq. 1's `W_init`).
    pub fn initial_cwnd(&self) -> u64 {
        self.initial_cwnd
    }
}

/// Compute the LIA `alpha` for a set of subflows given `(cwnd_bytes, rtt_s)`
/// pairs (RFC 6356 §3):
///
/// `alpha = total_cwnd * max_i(cwnd_i / rtt_i^2) / (sum_i(cwnd_i / rtt_i))^2`
///
/// Subflows with unknown (zero) RTT are ignored; returns 1.0 if nothing
/// usable remains (a single uncoupled flow behaves like Reno).
pub fn lia_alpha(flows: &[(u64, f64)]) -> f64 {
    let usable: Vec<(f64, f64)> = flows
        .iter()
        .filter(|&&(cwnd, rtt)| cwnd > 0 && rtt > 0.0)
        .map(|&(cwnd, rtt)| (cwnd as f64, rtt))
        .collect();
    if usable.is_empty() {
        return 1.0;
    }
    let total: f64 = usable.iter().map(|&(c, _)| c).sum();
    let max_term = usable
        .iter()
        .map(|&(c, r)| c / (r * r))
        .fold(0.0_f64, f64::max);
    let sum_term: f64 = usable.iter().map(|&(c, r)| c / r).sum();
    if sum_term <= 0.0 {
        return 1.0;
    }
    (total * max_term / (sum_term * sum_term)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1428;

    fn reno() -> CongestionCtrl {
        CongestionCtrl::new(CcAlgorithm::Reno, MSS, 10)
    }

    #[test]
    fn initial_window() {
        let cc = reno();
        assert_eq!(cc.cwnd(), 10 * MSS as u64);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = reno();
        let w0 = cc.cwnd();
        // Acking a full window in slow start doubles it.
        cc.on_ack(w0);
        assert_eq!(cc.cwnd(), 2 * w0);
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut cc = reno();
        cc.on_fast_retransmit(); // forces ssthresh = cwnd/2, leaves SS
        assert!(!cc.in_slow_start());
        let w = cc.cwnd();
        // One full window of ACKs grows cwnd by ~one MSS.
        cc.on_ack(w);
        assert!(
            (cc.cwnd() as i64 - (w + MSS as u64) as i64).unsigned_abs() <= 2,
            "cwnd {} expected ~{}",
            cc.cwnd(),
            w + MSS as u64
        );
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = reno();
        cc.on_ack(cc.cwnd()); // grow a bit
        let w = cc.cwnd();
        cc.on_fast_retransmit();
        assert_eq!(cc.cwnd(), (w / 2).max(2 * MSS as u64));
        assert_eq!(cc.ssthresh(), cc.cwnd());
    }

    #[test]
    fn timeout_collapses_to_one_mss() {
        let mut cc = reno();
        cc.on_ack(cc.cwnd());
        let w = cc.cwnd();
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS as u64);
        assert_eq!(cc.ssthresh(), (w / 2).max(2 * MSS as u64));
        assert!(cc.in_slow_start());
    }

    #[test]
    fn floor_of_two_mss() {
        let mut cc = reno();
        for _ in 0..10 {
            cc.on_fast_retransmit();
        }
        assert_eq!(cc.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn idle_restart_halves_per_rto() {
        let mut cc = reno();
        cc.on_ack(cc.cwnd());
        cc.on_ack(cc.cwnd());
        cc.on_ack(cc.cwnd());
        let grown = cc.cwnd();
        assert!(grown > 4 * cc.initial_cwnd());
        // One idle RTO: one halving.
        cc.restart_after_idle(1);
        assert_eq!(cc.cwnd(), grown / 2);
        // A long idle period floors at the initial window.
        cc.restart_after_idle(40);
        assert_eq!(cc.cwnd(), cc.initial_cwnd());
        // Degenerate huge period must not shift out of range.
        cc.restart_after_idle(u32::MAX);
        assert_eq!(cc.cwnd(), cc.initial_cwnd());
    }

    #[test]
    fn lia_increase_never_exceeds_reno() {
        let mut lia = CongestionCtrl::new(CcAlgorithm::Lia, MSS, 10);
        let mut reno = reno();
        lia.on_fast_retransmit();
        reno.on_fast_retransmit();
        lia.set_lia(2.0, lia.cwnd() * 2);
        // With alpha/total equal to 1/cwnd the increases tie; make alpha
        // large so min() must clip at the Reno rate.
        lia.set_lia(1e9, lia.cwnd());
        let w = lia.cwnd();
        lia.on_ack(w);
        reno.on_ack(w);
        assert!(lia.cwnd() <= reno.cwnd() + 1);
    }

    #[test]
    fn lia_coupling_slows_growth() {
        let mut lia = CongestionCtrl::new(CcAlgorithm::Lia, MSS, 10);
        lia.on_fast_retransmit();
        let w = lia.cwnd();
        // alpha = 0.5 with total twice the local window: increase should be
        // about a quarter of Reno's.
        lia.set_lia(0.5, 2 * w);
        lia.on_ack(w);
        let growth = lia.cwnd() - w;
        assert!(
            growth < MSS as u64 / 2,
            "coupled growth {growth} not damped"
        );
    }

    #[test]
    fn lia_alpha_symmetric_paths() {
        // Two identical subflows: alpha = total * (c/r^2) / (2c/r)^2
        //                        = 2c * c/r^2 / (4c^2/r^2) = 1/2.
        let a = lia_alpha(&[(100_000, 0.1), (100_000, 0.1)]);
        assert!((a - 0.5).abs() < 1e-12, "{a}");
    }

    #[test]
    fn lia_alpha_single_flow_is_one() {
        let a = lia_alpha(&[(100_000, 0.05)]);
        assert!((a - 1.0).abs() < 1e-12, "{a}");
    }

    #[test]
    fn lia_alpha_ignores_unknown_rtt() {
        let a = lia_alpha(&[(100_000, 0.05), (50_000, 0.0)]);
        assert!((a - 1.0).abs() < 1e-12, "{a}");
        assert_eq!(lia_alpha(&[]), 1.0);
        assert_eq!(lia_alpha(&[(0, 0.0)]), 1.0);
    }

    #[test]
    fn lia_alpha_asymmetric_favors_fast_path() {
        // A fast path (small RTT) should push alpha up relative to the
        // symmetric case.
        let sym = lia_alpha(&[(100_000, 0.1), (100_000, 0.1)]);
        let asym = lia_alpha(&[(100_000, 0.02), (100_000, 0.1)]);
        assert!(asym > sym);
    }
}
