//! Round-trip-time estimation (RFC 6298, Jacobson/Karn).
//!
//! Two eMPTCP-specific hooks live here:
//!
//! * the handshake RTT (SYN → SYN-ACK) is recorded separately because the
//!   bandwidth predictor derives its sampling interval δ from "the measured
//!   round-trip time during subflow establishment" (§3.2);
//! * [`RttEstimator::reset_for_resume`] implements §3.6's "eMPTCP sets the
//!   measured RTT of the new subflow to zero", which makes the minRTT
//!   scheduler probe a resumed subflow immediately.

use emptcp_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Smoothed RTT state.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RttEstimator {
    /// Smoothed RTT; `None` until the first sample (or after a resume reset).
    srtt: Option<SimDuration>,
    /// RTT variance.
    rttvar: SimDuration,
    /// Current retransmission timeout.
    rto: SimDuration,
    /// RTT measured during connection establishment, if any.
    handshake_rtt: Option<SimDuration>,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl RttEstimator {
    /// Linux-like clamp bounds: 200 ms floor, 60 s ceiling.
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(1),
            handshake_rtt: None,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
        }
    }

    /// Incorporate a new sample (RFC 6298 §2).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // rttvar := 3/4 rttvar + 1/4 |delta| ; srtt := 7/8 srtt + 1/8 rtt
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        let var_term = (self.rttvar * 4).max(SimDuration::from_millis(1));
        self.rto = (srtt + var_term).clamp(self.min_rto, self.max_rto);
    }

    /// Record the handshake RTT (also feeds the estimator as first sample).
    pub fn on_handshake(&mut self, rtt: SimDuration) {
        self.handshake_rtt = Some(rtt);
        self.on_sample(rtt);
    }

    /// RTT measured during establishment, if the handshake completed.
    pub fn handshake_rtt(&self) -> Option<SimDuration> {
        self.handshake_rtt
    }

    /// Smoothed RTT; zero when unknown — matching the kernel convention the
    /// minRTT scheduler exploits ("a subflow with `srtt == 0` is probed
    /// first").
    pub fn srtt_or_zero(&self) -> SimDuration {
        self.srtt.unwrap_or(SimDuration::ZERO)
    }

    /// Smoothed RTT if a sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current RTO.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Exponential backoff after a retransmission timeout.
    pub fn backoff(&mut self) {
        self.rto = (self.rto * 2).clamp(self.min_rto, self.max_rto);
    }

    /// §3.6: zero the RTT of a resumed subflow so the scheduler probes it.
    /// The RTO is left alone (retransmission safety is unaffected).
    pub fn reset_for_resume(&mut self) {
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.srtt_or_zero(), SimDuration::ZERO);
        e.on_sample(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        // rto = srtt + 4*rttvar = 100 + 200 = 300 ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.on_sample(ms(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 80.0).abs() < 1.0);
        // Variance collapses, so RTO clamps to the floor.
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn variance_grows_with_jitter() {
        let mut stable = RttEstimator::new();
        let mut jittery = RttEstimator::new();
        for i in 0..50 {
            stable.on_sample(ms(100));
            jittery.on_sample(ms(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100));
        let r0 = e.rto();
        e.backoff();
        assert_eq!(e.rto(), r0 * 2);
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60));
    }

    #[test]
    fn handshake_rtt_recorded_and_seeds_estimate() {
        let mut e = RttEstimator::new();
        e.on_handshake(ms(42));
        assert_eq!(e.handshake_rtt(), Some(ms(42)));
        assert_eq!(e.srtt(), Some(ms(42)));
    }

    #[test]
    fn resume_reset_zeroes_srtt_keeps_rto() {
        let mut e = RttEstimator::new();
        e.on_sample(ms(100));
        let rto = e.rto();
        e.reset_for_resume();
        assert_eq!(e.srtt_or_zero(), SimDuration::ZERO);
        assert_eq!(e.rto(), rto);
        // Next sample re-initializes rather than smoothing into stale state.
        e.on_sample(ms(500));
        assert_eq!(e.srtt(), Some(ms(500)));
    }

    #[test]
    fn rto_floor_respected() {
        let mut e = RttEstimator::new();
        e.on_sample(SimDuration::from_micros(500));
        assert_eq!(e.rto(), ms(200));
    }
}
