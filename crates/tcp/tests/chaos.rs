//! Chaos testing: the TCP endpoint pair must deliver the exact byte stream
//! through any combination of loss, reordering and duplication the network
//! can produce. The lossy network itself is the shared rig from
//! `emptcp-faults::testnet` (one path, duplication enabled).

use emptcp_faults::testnet::{ChaosNet, ChaosPath};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_tcp::{TcpConfig, TcpEndpoint};
use proptest::prelude::*;

/// Run a transfer through the chaotic network; returns bytes delivered at
/// the client and bytes the server saw acknowledged.
fn run_chaos(total: u64, loss: f64, dup: f64, jitter_ms: u64, seed: u64) -> (u64, u64) {
    let path = ChaosPath::new(loss, SimDuration::from_millis(10), jitter_ms).with_dup(dup);
    let mut net = ChaosNet::new(seed, vec![path]);
    let mut client = TcpEndpoint::client(TcpConfig::default());
    let mut server = TcpEndpoint::listener(TcpConfig::default());
    client.connect(SimTime::ZERO);
    server.write(total);

    let drain = |now: SimTime, c: &mut TcpEndpoint, s: &mut TcpEndpoint, net: &mut ChaosNet| {
        while let Some(seg) = c.poll_transmit(now) {
            net.send(now, false, 0, seg);
        }
        while let Some(seg) = s.poll_transmit(now) {
            net.send(now, true, 0, seg);
        }
    };
    drain(SimTime::ZERO, &mut client, &mut server, &mut net);

    let mut guard = 0u64;
    loop {
        guard += 1;
        if guard > 2_000_000 {
            break;
        }
        // Next event: packet delivery or the earliest endpoint timer.
        let timer = client
            .next_deadline()
            .into_iter()
            .chain(server.next_deadline())
            .min();
        let next_packet = net.peek_time();
        let now = match (next_packet, timer) {
            (Some(p), Some(t)) => p.min(t),
            (Some(p), None) => p,
            (None, Some(t)) => t,
            (None, None) => break,
        };
        if now > SimTime::from_secs(600) {
            break;
        }
        if Some(now) == next_packet {
            let (_, (to_client, _, seg)) = net.pop().expect("peeked");
            if to_client {
                client.on_segment(now, seg);
            } else {
                server.on_segment(now, seg);
            }
        }
        client.on_deadline(now);
        server.on_deadline(now);
        drain(now, &mut client, &mut server, &mut net);
        if client.bytes_delivered_total() >= total && server.bytes_acked_total() >= total {
            break;
        }
    }
    (client.bytes_delivered_total(), server.bytes_acked_total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delivers_exactly_through_chaos(
        total_kb in 16u64..256,
        loss in 0.0f64..0.15,
        dup in 0.0f64..0.1,
        jitter_ms in 0u64..40,
        seed in 0u64..u64::MAX,
    ) {
        let total = total_kb << 10;
        let (delivered, acked) = run_chaos(total, loss, dup, jitter_ms, seed);
        prop_assert_eq!(delivered, total, "under-/over-delivery");
        prop_assert_eq!(acked, total, "sender never learnt of completion");
    }
}

#[test]
fn survives_heavy_loss() {
    let (delivered, acked) = run_chaos(64 << 10, 0.30, 0.05, 20, 7);
    assert_eq!(delivered, 64 << 10);
    assert_eq!(acked, 64 << 10);
}

#[test]
fn survives_pure_reordering() {
    let (delivered, acked) = run_chaos(256 << 10, 0.0, 0.0, 60, 11);
    assert_eq!(delivered, 256 << 10);
    assert_eq!(acked, 256 << 10);
}

#[test]
fn survives_heavy_duplication() {
    let (delivered, acked) = run_chaos(128 << 10, 0.02, 0.5, 10, 13);
    assert_eq!(delivered, 128 << 10);
    assert_eq!(acked, 128 << 10);
}
