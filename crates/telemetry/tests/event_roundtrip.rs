//! Exhaustive JSONL round-trip coverage: every `TraceEvent` variant must
//! serialize through `jsonl_line` and parse back equal through
//! `parse_jsonl_line`. The replay half of the observability pipeline is
//! built on this property — a variant that cannot round-trip would silently
//! vanish from replayed dashboards and exports.

use emptcp_sim::SimTime;
use emptcp_telemetry::{jsonl_line, parse_jsonl_line, TraceEvent};

/// One exemplar per variant. The `covers_every_variant` test below fails to
/// compile if a new variant is added without extending this list.
fn exemplars() -> Vec<TraceEvent> {
    vec![
        TraceEvent::TcpState {
            conn: 0,
            subflow: 1,
            from: "SynSent",
            to: "Established",
        },
        TraceEvent::CwndChange {
            conn: 1,
            subflow: 0,
            cwnd: 29_200,
            ssthresh: u64::MAX,
            reason: "ack",
        },
        TraceEvent::Retransmit {
            conn: 2,
            subflow: 1,
            seq: 123_456_789,
            len: 1460,
            kind: "fast",
        },
        TraceEvent::RtoFired {
            conn: 3,
            subflow: 0,
            rto_ns: 200_000_000,
        },
        TraceEvent::Delivered {
            conn: 4,
            subflow: 1,
            bytes: 65_536,
        },
        TraceEvent::SchedPick {
            conn: 5,
            picked: 1,
            candidates: vec![0, 1, 2],
            reason: "min_rtt",
            srtt_ns: 31_250_000,
        },
        TraceEvent::SchedPick {
            conn: 5,
            picked: 0,
            candidates: vec![],
            reason: "only_candidate",
            srtt_ns: 0,
        },
        TraceEvent::SubflowEstablished {
            conn: 6,
            subflow: 1,
            iface: "LTE",
        },
        TraceEvent::SubflowClosed {
            conn: 7,
            subflow: 0,
            reason: "fin",
        },
        TraceEvent::MpPrio {
            conn: 8,
            subflow: 1,
            backup: true,
        },
        TraceEvent::RrcTransition {
            from: "Idle",
            to: "Promotion",
        },
        TraceEvent::EnergyLevel {
            component: "cell",
            watts: 1.125,
        },
        TraceEvent::EnergyLevel {
            component: "wifi",
            watts: 0.000_1,
        },
        TraceEvent::PathUsage {
            conn: 9,
            decision: "WiFi-only",
        },
        TraceEvent::InvariantViolated {
            name: "ack_conservation",
            detail: "acked 101 > sent 100".to_string(),
        },
        TraceEvent::FaultInjected {
            target: "cellular",
            action: "rate=500000".to_string(),
        },
        TraceEvent::SubflowDead {
            conn: 10,
            subflow: 1,
            reason: "rto_threshold",
            consecutive_rtos: 3,
            reinjected_bytes: 42_000,
        },
        TraceEvent::SubflowRevived {
            conn: 11,
            subflow: 1,
            reason: "link_restored",
        },
        TraceEvent::BackupPromoted {
            conn: 12,
            subflow: 1,
        },
        TraceEvent::RouterDrop {
            router: 0,
            port: 3,
            reason: "queue_full",
        },
        TraceEvent::QueueDepth {
            router: 1,
            port: 0,
            bytes: 48_000,
            capacity: 64_000,
        },
    ]
}

fn round_trip(t: SimTime, ev: &TraceEvent) -> (SimTime, TraceEvent) {
    let line = jsonl_line(t, ev);
    assert!(
        !line.contains('\n'),
        "jsonl_line must stay single-line: {line:?}"
    );
    parse_jsonl_line(&line).unwrap_or_else(|e| panic!("parse failed for {line:?}: {e:?}"))
}

#[test]
fn every_variant_round_trips() {
    for (i, ev) in exemplars().iter().enumerate() {
        let t = SimTime::from_nanos(i as u64 * 1_000_003 + 7);
        let (t2, ev2) = round_trip(t, ev);
        assert_eq!(t2, t, "timestamp drifted for {ev:?}");
        assert_eq!(&ev2, ev, "event drifted through round trip");
        // Re-serializing the parsed event must reproduce the exact bytes:
        // that is the determinism contract replay-vs-live rests on.
        assert_eq!(jsonl_line(t2, &ev2), jsonl_line(t, ev));
    }
}

#[test]
fn covers_every_variant() {
    let exemplars = exemplars();
    let covered = |kind: &str| exemplars.iter().filter(|e| e.kind() == kind).count();
    // Compile-time exhaustiveness: adding a variant breaks this match, and
    // the assert ensures each listed kind actually appears in `exemplars`.
    let probe = &exemplars[0];
    let kinds: &[&str] = match probe {
        TraceEvent::TcpState { .. }
        | TraceEvent::CwndChange { .. }
        | TraceEvent::Retransmit { .. }
        | TraceEvent::RtoFired { .. }
        | TraceEvent::Delivered { .. }
        | TraceEvent::SchedPick { .. }
        | TraceEvent::SubflowEstablished { .. }
        | TraceEvent::SubflowClosed { .. }
        | TraceEvent::MpPrio { .. }
        | TraceEvent::RrcTransition { .. }
        | TraceEvent::EnergyLevel { .. }
        | TraceEvent::PathUsage { .. }
        | TraceEvent::InvariantViolated { .. }
        | TraceEvent::FaultInjected { .. }
        | TraceEvent::SubflowDead { .. }
        | TraceEvent::SubflowRevived { .. }
        | TraceEvent::BackupPromoted { .. }
        | TraceEvent::RouterDrop { .. }
        | TraceEvent::QueueDepth { .. } => &[
            "TcpState",
            "CwndChange",
            "Retransmit",
            "RtoFired",
            "Delivered",
            "SchedPick",
            "SubflowEstablished",
            "SubflowClosed",
            "MpPrio",
            "RrcTransition",
            "EnergyLevel",
            "PathUsage",
            "InvariantViolated",
            "FaultInjected",
            "SubflowDead",
            "SubflowRevived",
            "BackupPromoted",
            "RouterDrop",
            "QueueDepth",
        ],
    };
    for kind in kinds {
        assert!(
            covered(kind) > 0,
            "no exemplar for variant {kind}; extend exemplars()"
        );
    }
}

#[test]
fn string_escaping_edge_cases_round_trip() {
    let nasty: &[&str] = &[
        "",
        "plain",
        "with \"double quotes\"",
        "back\\slash and \\\" mixed",
        "newline\nand\rcarriage",
        "tab\tseparated\tfields",
        "control \u{0000} \u{0001} \u{001f} chars",
        "del \u{007f} char",
        "unicode: émphase überall ✓",
        "emoji 🚀📡 and beyond-BMP 𝕊",
        "json-ish: {\"key\": [1, 2]}",
        "trailing backslash \\",
        "/forward/slashes/",
    ];
    for (i, s) in nasty.iter().enumerate() {
        let ev = TraceEvent::FaultInjected {
            target: "wifi",
            action: s.to_string(),
        };
        let (_, back) = round_trip(SimTime::from_nanos(i as u64), &ev);
        assert_eq!(back, ev, "escaping failed for {s:?}");

        let ev = TraceEvent::InvariantViolated {
            name: "dss_coverage",
            detail: format!("detail {s} tail"),
        };
        let (_, back) = round_trip(SimTime::from_nanos(i as u64), &ev);
        assert_eq!(back, ev, "escaping failed inside detail for {s:?}");
    }
}

#[test]
fn extreme_numeric_values_round_trip() {
    let evs = [
        TraceEvent::RtoFired {
            conn: u32::MAX,
            subflow: u8::MAX,
            rto_ns: u64::MAX,
        },
        TraceEvent::EnergyLevel {
            component: "cell",
            watts: 0.0,
        },
        TraceEvent::EnergyLevel {
            component: "cell",
            watts: 1e-300,
        },
        TraceEvent::EnergyLevel {
            component: "cell",
            watts: 12_345.678_901_234_5,
        },
    ];
    for ev in &evs {
        let (_, back) = round_trip(SimTime::from_nanos(u64::MAX), ev);
        assert_eq!(&back, ev);
    }
}

#[test]
fn unknown_labels_parse_via_leak_cache() {
    // A trace written by a newer emitter may carry labels outside the
    // intern table; they must still parse (interned by leaking once).
    let line = r#"{"t_ns":5,"event":{"SubflowClosed":{"conn":1,"subflow":0,"reason":"brand_new_reason"}}}"#;
    let (_, ev) = parse_jsonl_line(line).unwrap();
    match ev {
        TraceEvent::SubflowClosed { reason, .. } => assert_eq!(reason, "brand_new_reason"),
        other => panic!("wrong variant: {other:?}"),
    }
}

#[test]
fn malformed_lines_are_rejected() {
    for line in [
        "",
        "not json",
        "{}",
        r#"{"t_ns":1}"#,
        r#"{"event":{"MpPrio":{"conn":1,"subflow":0,"backup":true}}}"#,
        r#"{"t_ns":-1,"event":{"BackupPromoted":{"conn":1,"subflow":0}}}"#,
        r#"{"t_ns":1,"event":{"BackupPromoted":{"conn":1}}}"#,
        r#"{"t_ns":1,"event":{"MpPrio":{"conn":1,"subflow":999,"backup":true}}}"#,
    ] {
        assert!(
            parse_jsonl_line(line).is_err(),
            "accepted bad line {line:?}"
        );
    }
}
