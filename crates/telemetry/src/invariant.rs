//! Online invariant checking.
//!
//! The observer holds conservation properties the stack must satisfy at all
//! times. Instrumented code (and the host simulation's tick loop) feeds it
//! observed quantities; a violated property is recorded — and surfaces as a
//! [`crate::TraceEvent::InvariantViolated`] trace event — instead of
//! panicking, so a single corrupted counter produces a diagnosable trace
//! rather than an aborted run. Tests assert `violations().is_empty()`.

use emptcp_sim::SimTime;
use std::fmt;

/// A single caught invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub at: SimTime,
    pub name: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] invariant `{}` violated: {}",
            self.at, self.name, self.detail
        )
    }
}

/// Collects violations of the stack-wide conservation properties.
#[derive(Debug, Default)]
pub struct InvariantObserver {
    violations: Vec<Violation>,
}

impl InvariantObserver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a failed check directly.
    pub fn report(&mut self, at: SimTime, name: &'static str, detail: String) {
        self.violations.push(Violation { at, name, detail });
    }

    /// Generic check: record a violation when `ok` is false. Returns `ok`
    /// so callers can chain. The detail closure only runs on failure.
    pub fn check(
        &mut self,
        at: SimTime,
        name: &'static str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) -> bool {
        if !ok {
            self.report(at, name, detail());
        }
        ok
    }

    /// Cumulative bytes ACKed on a flow can never exceed bytes sent.
    pub fn check_ack_conservation(
        &mut self,
        at: SimTime,
        label: &str,
        bytes_acked: u64,
        bytes_sent: u64,
    ) {
        self.check(at, "ack_conservation", bytes_acked <= bytes_sent, || {
            format!("{label}: acked {bytes_acked} > sent {bytes_sent}")
        });
    }

    /// DSS reassembly must deliver the in-order byte stream exactly once:
    /// bytes handed to the application equal the receive-window advance.
    pub fn check_dss_coverage(
        &mut self,
        at: SimTime,
        label: &str,
        bytes_delivered: u64,
        stream_advance: u64,
    ) {
        self.check(
            at,
            "dss_coverage",
            bytes_delivered == stream_advance,
            || {
                format!(
                    "{label}: delivered {bytes_delivered} bytes but the data-level \
                 stream advanced {stream_advance}"
                )
            },
        );
    }

    /// Accumulated energy is an integral of non-negative power: it can
    /// never decrease between observations.
    pub fn check_energy_monotone(&mut self, at: SimTime, prev_joules: f64, now_joules: f64) {
        // Allow for floating-point integration noise.
        self.check(
            at,
            "energy_monotone",
            now_joules >= prev_joules - 1e-9,
            || format!("energy decreased: {prev_joules} J -> {now_joules} J"),
        );
    }

    /// Radio-state residencies must partition elapsed time: their sum
    /// equals the clock advance since tracking began.
    pub fn check_residency_sum(&mut self, at: SimTime, residency_ns_sum: u64, elapsed_ns: u64) {
        self.check(at, "residency_sum", residency_ns_sum == elapsed_ns, || {
            format!(
                "radio-state residencies sum to {residency_ns_sum} ns over \
                     {elapsed_ns} ns elapsed"
            )
        });
    }

    /// End-of-run oracle: every recoverable fault script must still end
    /// with the full workload delivered.
    pub fn check_exact_delivery(&mut self, at: SimTime, label: &str, delivered: u64, asked: u64) {
        self.check(at, "exact_delivery", delivered == asked, || {
            format!("{label}: delivered {delivered} of {asked} bytes")
        });
    }

    /// End-of-run oracle: once the last fault clears, no subflow may still
    /// believe its link is down.
    pub fn check_no_stuck_subflows(&mut self, at: SimTime, label: &str, stuck: u64) {
        self.check(at, "no_stuck_subflows", stuck == 0, || {
            format!("{label}: {stuck} subflow(s) still flagged link-down after recovery")
        });
    }

    /// End-of-run oracle: energy accounting must conserve — the radio
    /// sub-accounts (promotion + tail here) can never exceed the total.
    pub fn check_energy_conservation(
        &mut self,
        at: SimTime,
        label: &str,
        parts_j: f64,
        total_j: f64,
    ) {
        self.check(
            at,
            "energy_conservation",
            parts_j <= total_j + 1e-9 && parts_j >= 0.0,
            || format!("{label}: sub-accounts sum to {parts_j} J of {total_j} J total"),
        );
    }

    /// End-of-run oracle for do-no-harm topologies: the MPTCP client's
    /// share of the bottleneck must stay within `[floor, ceil]` of the
    /// fair split.
    pub fn check_fairness_bounds(
        &mut self,
        at: SimTime,
        label: &str,
        share: f64,
        floor: f64,
        ceil: f64,
    ) {
        self.check(
            at,
            "fairness_bounds",
            (floor..=ceil).contains(&share),
            || format!("{label}: bottleneck share {share:.3} outside [{floor:.3}, {ceil:.3}]"),
        );
    }

    /// End-of-run oracle: the host's segment slab must balance — every
    /// parked segment taken exactly once. A queued packet event whose
    /// segment is never reclaimed shows up as `live > 0` (a structural
    /// leak); reclaiming one twice shows up in `double_frees`.
    pub fn check_segment_slab(&mut self, at: SimTime, label: &str, live: u64, double_frees: u64) {
        self.check(
            at,
            "segment_slab_balance",
            live == 0 && double_frees == 0,
            || {
                format!(
                    "{label}: {live} segment(s) still parked at end of run, \
                     {double_frees} double-free(s)"
                )
            },
        );
    }

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> SimTime {
        SimTime::from_secs(1)
    }

    #[test]
    fn passing_checks_record_nothing() {
        let mut obs = InvariantObserver::new();
        obs.check_ack_conservation(t(), "sf0", 100, 100);
        obs.check_dss_coverage(t(), "conn0", 42, 42);
        obs.check_energy_monotone(t(), 1.0, 1.0);
        obs.check_residency_sum(t(), 1_000, 1_000);
        assert!(obs.violations().is_empty());
    }

    #[test]
    fn corrupted_counter_is_caught() {
        let mut obs = InvariantObserver::new();
        // A flow claiming more ACKed bytes than it ever sent.
        obs.check_ack_conservation(t(), "sf1", 101, 100);
        assert_eq!(obs.violations().len(), 1);
        let v = &obs.violations()[0];
        assert_eq!(v.name, "ack_conservation");
        assert!(v.detail.contains("101"));
    }

    #[test]
    fn chaos_oracles_catch_their_violations() {
        let mut obs = InvariantObserver::new();
        obs.check_exact_delivery(t(), "run", 100, 100);
        obs.check_no_stuck_subflows(t(), "run", 0);
        obs.check_energy_conservation(t(), "run", 3.0, 5.0);
        obs.check_fairness_bounds(t(), "run", 0.5, 0.3, 0.7);
        assert!(obs.violations().is_empty());

        obs.check_exact_delivery(t(), "run", 99, 100);
        obs.check_no_stuck_subflows(t(), "run", 2);
        obs.check_energy_conservation(t(), "run", 6.0, 5.0);
        obs.check_fairness_bounds(t(), "run", 0.1, 0.3, 0.7);
        let names: Vec<&str> = obs.violations().iter().map(|v| v.name).collect();
        assert_eq!(
            names,
            vec![
                "exact_delivery",
                "no_stuck_subflows",
                "energy_conservation",
                "fairness_bounds"
            ]
        );
    }

    #[test]
    fn energy_rollback_is_caught_but_fp_noise_is_not() {
        let mut obs = InvariantObserver::new();
        obs.check_energy_monotone(t(), 5.0, 5.0 - 1e-12);
        assert!(obs.violations().is_empty(), "fp noise tolerated");
        obs.check_energy_monotone(t(), 5.0, 4.0);
        assert_eq!(obs.violations().len(), 1);
    }
}
