//! Typed trace events.
//!
//! Every event is stamped with the simulation clock at emission and carries
//! only plain data (ids, names, byte counts) so the telemetry crate stays at
//! the bottom of the dependency graph — instrumented crates depend on it,
//! never the other way around.
//!
//! Serialized shape (one JSON object per line in a `.jsonl` trace):
//!
//! ```json
//! {"t_ns": 1500000, "event": {"TcpState": {"conn": 0, "subflow": 1, "from": "SynSent", "to": "Established"}}}
//! ```

use serde::Serialize;

/// A structured, simulation-time-stamped event.
///
/// Variants mirror the observable state machines of the stack, bottom-up:
/// radio (RRC, energy), single-path TCP, MPTCP scheduling, and the eMPTCP
/// path-usage controller.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A TCP endpoint moved between protocol states.
    TcpState {
        conn: u32,
        subflow: u8,
        from: &'static str,
        to: &'static str,
    },
    /// Congestion window / slow-start threshold changed materially
    /// (emissions are coalesced to at most one per MSS of cwnd movement).
    CwndChange {
        conn: u32,
        subflow: u8,
        cwnd: u64,
        ssthresh: u64,
        reason: &'static str,
    },
    /// A segment was retransmitted. `kind` is `"fast"` or `"rto"`.
    Retransmit {
        conn: u32,
        subflow: u8,
        seq: u64,
        len: u32,
        kind: &'static str,
    },
    /// The retransmission timer fired.
    RtoFired { conn: u32, subflow: u8, rto_ns: u64 },
    /// The MPTCP scheduler picked a subflow for the next chunk of data.
    SchedPick {
        conn: u32,
        picked: u8,
        /// Subflow ids that were eligible candidates for this pick.
        candidates: Vec<u8>,
        /// Why the pick won: `"min_rtt"`, `"only_candidate"`, or
        /// `"backup_fallback"`.
        reason: &'static str,
        /// Smoothed RTT of the winner at pick time (0 = unmeasured).
        srtt_ns: u64,
    },
    /// A subflow finished its handshake.
    SubflowEstablished {
        conn: u32,
        subflow: u8,
        iface: &'static str,
    },
    /// A subflow was closed or torn down.
    SubflowClosed {
        conn: u32,
        subflow: u8,
        reason: &'static str,
    },
    /// A subflow's MP_PRIO backup flag flipped.
    MpPrio {
        conn: u32,
        subflow: u8,
        backup: bool,
    },
    /// The cellular RRC state machine transitioned.
    RrcTransition {
        from: &'static str,
        to: &'static str,
    },
    /// An energy-meter component changed its draw level.
    EnergyLevel { component: &'static str, watts: f64 },
    /// The eMPTCP path-usage controller changed its decision.
    PathUsage { conn: u32, decision: &'static str },
    /// An invariant observer caught a violated conservation property.
    InvariantViolated { name: &'static str, detail: String },
    /// The fault injector applied a scripted fault to a target interface.
    FaultInjected {
        /// Interface label the fault applies to (`"wifi"`, `"cellular"`).
        target: &'static str,
        /// Human-readable action, e.g. `"iface_down"`, `"rate=500000"`.
        action: String,
    },
    /// Failure detection declared a subflow dead (consecutive RTOs) or a
    /// link-down notification arrived; its in-flight data was queued for
    /// reinjection on surviving subflows.
    SubflowDead {
        conn: u32,
        subflow: u8,
        /// `"rto_threshold"` or `"link_down"`.
        reason: &'static str,
        /// Consecutive RTO expirations observed at declaration time.
        consecutive_rtos: u64,
        /// Bytes of unacknowledged data queued for reinjection.
        reinjected_bytes: u64,
    },
    /// A subflow previously declared dead became usable again (link
    /// restored or acknowledgements resumed).
    SubflowRevived {
        conn: u32,
        subflow: u8,
        reason: &'static str,
    },
    /// A backup subflow was promoted to regular because no regular subflow
    /// survived (MP_PRIO is sent to the peer alongside).
    BackupPromoted { conn: u32, subflow: u8 },
    /// A router output port dropped a packet. `reason` is `"queue_full"`,
    /// `"channel"`, or `"link_down"`.
    RouterDrop {
        router: u32,
        port: u32,
        reason: &'static str,
    },
    /// A router output port's queue crossed its ECN marking threshold
    /// (emissions are edge-triggered on threshold crossings, not
    /// per-enqueue, so quiet ports cost nothing).
    QueueDepth {
        router: u32,
        port: u32,
        /// Bytes queued awaiting serialization at emission time.
        bytes: u64,
        /// Drop-tail capacity of the port queue.
        capacity: u64,
    },
}

impl TraceEvent {
    /// Short kind tag, useful for filtering traces.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TcpState { .. } => "TcpState",
            TraceEvent::CwndChange { .. } => "CwndChange",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::RtoFired { .. } => "RtoFired",
            TraceEvent::SchedPick { .. } => "SchedPick",
            TraceEvent::SubflowEstablished { .. } => "SubflowEstablished",
            TraceEvent::SubflowClosed { .. } => "SubflowClosed",
            TraceEvent::MpPrio { .. } => "MpPrio",
            TraceEvent::RrcTransition { .. } => "RrcTransition",
            TraceEvent::EnergyLevel { .. } => "EnergyLevel",
            TraceEvent::PathUsage { .. } => "PathUsage",
            TraceEvent::InvariantViolated { .. } => "InvariantViolated",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::SubflowDead { .. } => "SubflowDead",
            TraceEvent::SubflowRevived { .. } => "SubflowRevived",
            TraceEvent::BackupPromoted { .. } => "BackupPromoted",
            TraceEvent::RouterDrop { .. } => "RouterDrop",
            TraceEvent::QueueDepth { .. } => "QueueDepth",
        }
    }
}
