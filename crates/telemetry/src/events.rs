//! Typed trace events.
//!
//! Every event is stamped with the simulation clock at emission and carries
//! only plain data (ids, names, byte counts) so the telemetry crate stays at
//! the bottom of the dependency graph — instrumented crates depend on it,
//! never the other way around.
//!
//! Serialized shape (one JSON object per line in a `.jsonl` trace):
//!
//! ```json
//! {"t_ns": 1500000, "event": {"TcpState": {"conn": 0, "subflow": 1, "from": "SynSent", "to": "Established"}}}
//! ```

use serde::{Deserialize, Error, Serialize};
use serde_json::{Map, Value};

/// Coalescing threshold for [`TraceEvent::Delivered`] emissions: connections
/// accumulate delivered bytes and emit one event per this many bytes (plus a
/// final flush), so the throughput signal stays cheap on the hot path.
pub const DELIVERED_EMIT_BYTES: u64 = 64 * 1024;

/// A structured, simulation-time-stamped event.
///
/// Variants mirror the observable state machines of the stack, bottom-up:
/// radio (RRC, energy), single-path TCP, MPTCP scheduling, and the eMPTCP
/// path-usage controller.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A TCP endpoint moved between protocol states.
    TcpState {
        conn: u32,
        subflow: u8,
        from: &'static str,
        to: &'static str,
    },
    /// Congestion window / slow-start threshold changed materially
    /// (emissions are coalesced to at most one per MSS of cwnd movement).
    CwndChange {
        conn: u32,
        subflow: u8,
        cwnd: u64,
        ssthresh: u64,
        reason: &'static str,
    },
    /// A segment was retransmitted. `kind` is `"fast"` or `"rto"`.
    Retransmit {
        conn: u32,
        subflow: u8,
        seq: u64,
        len: u32,
        kind: &'static str,
    },
    /// The retransmission timer fired.
    RtoFired { conn: u32, subflow: u8, rto_ns: u64 },
    /// In-order payload was delivered to the application. Emissions are
    /// coalesced to one per [`DELIVERED_EMIT_BYTES`] of progress (plus a
    /// final flush when the run ends), so `bytes` is a delta, not a total.
    /// This is the throughput signal the observability pipeline bins.
    Delivered { conn: u32, subflow: u8, bytes: u64 },
    /// The MPTCP scheduler picked a subflow for the next chunk of data.
    SchedPick {
        conn: u32,
        picked: u8,
        /// Subflow ids that were eligible candidates for this pick.
        candidates: Vec<u8>,
        /// Why the pick won: `"min_rtt"`, `"only_candidate"`, or
        /// `"backup_fallback"`.
        reason: &'static str,
        /// Smoothed RTT of the winner at pick time (0 = unmeasured).
        srtt_ns: u64,
    },
    /// A subflow finished its handshake.
    SubflowEstablished {
        conn: u32,
        subflow: u8,
        iface: &'static str,
    },
    /// A subflow was closed or torn down.
    SubflowClosed {
        conn: u32,
        subflow: u8,
        reason: &'static str,
    },
    /// A subflow's MP_PRIO backup flag flipped.
    MpPrio {
        conn: u32,
        subflow: u8,
        backup: bool,
    },
    /// The cellular RRC state machine transitioned.
    RrcTransition {
        from: &'static str,
        to: &'static str,
    },
    /// An energy-meter component changed its draw level.
    EnergyLevel { component: &'static str, watts: f64 },
    /// The eMPTCP path-usage controller changed its decision.
    PathUsage { conn: u32, decision: &'static str },
    /// An invariant observer caught a violated conservation property.
    InvariantViolated { name: &'static str, detail: String },
    /// The fault injector applied a scripted fault to a target interface.
    FaultInjected {
        /// Interface label the fault applies to (`"wifi"`, `"cellular"`).
        target: &'static str,
        /// Human-readable action, e.g. `"iface_down"`, `"rate=500000"`.
        action: String,
    },
    /// Failure detection declared a subflow dead (consecutive RTOs) or a
    /// link-down notification arrived; its in-flight data was queued for
    /// reinjection on surviving subflows.
    SubflowDead {
        conn: u32,
        subflow: u8,
        /// `"rto_threshold"` or `"link_down"`.
        reason: &'static str,
        /// Consecutive RTO expirations observed at declaration time.
        consecutive_rtos: u64,
        /// Bytes of unacknowledged data queued for reinjection.
        reinjected_bytes: u64,
    },
    /// A subflow previously declared dead became usable again (link
    /// restored or acknowledgements resumed).
    SubflowRevived {
        conn: u32,
        subflow: u8,
        reason: &'static str,
    },
    /// A backup subflow was promoted to regular because no regular subflow
    /// survived (MP_PRIO is sent to the peer alongside).
    BackupPromoted { conn: u32, subflow: u8 },
    /// A router output port dropped a packet. `reason` is `"queue_full"`,
    /// `"channel"`, or `"link_down"`.
    RouterDrop {
        router: u32,
        port: u32,
        reason: &'static str,
    },
    /// A router output port's queue crossed its ECN marking threshold
    /// (emissions are edge-triggered on threshold crossings, not
    /// per-enqueue, so quiet ports cost nothing).
    QueueDepth {
        router: u32,
        port: u32,
        /// Bytes queued awaiting serialization at emission time.
        bytes: u64,
        /// Drop-tail capacity of the port queue.
        capacity: u64,
    },
}

impl TraceEvent {
    /// Short kind tag, useful for filtering traces.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TcpState { .. } => "TcpState",
            TraceEvent::CwndChange { .. } => "CwndChange",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::RtoFired { .. } => "RtoFired",
            TraceEvent::Delivered { .. } => "Delivered",
            TraceEvent::SchedPick { .. } => "SchedPick",
            TraceEvent::SubflowEstablished { .. } => "SubflowEstablished",
            TraceEvent::SubflowClosed { .. } => "SubflowClosed",
            TraceEvent::MpPrio { .. } => "MpPrio",
            TraceEvent::RrcTransition { .. } => "RrcTransition",
            TraceEvent::EnergyLevel { .. } => "EnergyLevel",
            TraceEvent::PathUsage { .. } => "PathUsage",
            TraceEvent::InvariantViolated { .. } => "InvariantViolated",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::SubflowDead { .. } => "SubflowDead",
            TraceEvent::SubflowRevived { .. } => "SubflowRevived",
            TraceEvent::BackupPromoted { .. } => "BackupPromoted",
            TraceEvent::RouterDrop { .. } => "RouterDrop",
            TraceEvent::QueueDepth { .. } => "QueueDepth",
        }
    }
}

/// Intern a parsed string into a `&'static str`.
///
/// Every label the stack emits is drawn from a small closed vocabulary, so
/// replaying a trace almost always hits the table below. Strings outside the
/// table (e.g. traces from a newer emitter) are leaked once and cached, so
/// replay memory stays bounded by the number of *distinct* labels, not the
/// trace length.
pub fn intern(s: &str) -> &'static str {
    // Closed vocabulary of every `&'static str` field the emitters use,
    // grouped by the state machine that produces it.
    const KNOWN: &[&str] = &[
        // TCP protocol states.
        "Closed",
        "Listen",
        "SynSent",
        "SynRcvd",
        "Established",
        // cwnd-change / retransmit reasons.
        "ack",
        "fast_retransmit",
        "rto",
        "fast",
        // scheduler pick reasons.
        "min_rtt",
        "only_candidate",
        "backup_fallback",
        // interface labels.
        "WiFi",
        "3G",
        "LTE",
        "wifi",
        "cellular",
        "cell",
        "core",
        "mptcp",
        // subflow lifecycle reasons.
        "fin",
        "link_down",
        "rto_threshold",
        "stalled",
        "link_restored",
        "ack_progress",
        // RRC states.
        "Idle",
        "Promotion",
        "Active",
        "Tail",
        // path-usage decisions.
        "WiFi-only",
        "Cellular-only",
        "Both",
        // invariant names.
        "ack_conservation",
        "dss_coverage",
        "energy_monotone",
        "residency_sum",
        // router drop reasons.
        "queue_full",
        "channel",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == s) {
        return k;
    }
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("intern cache poisoned");
    if let Some(v) = cache.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    cache.insert(s.to_owned(), leaked);
    leaked
}

fn obj<'a>(v: &'a Value, what: &str) -> Result<&'a Map, Error> {
    v.as_object()
        .ok_or_else(|| Error::new(format!("{what}: expected object, got {v:?}")))
}

fn field<'a>(m: &'a Map, variant: &str, key: &str) -> Result<&'a Value, Error> {
    m.get(key)
        .ok_or_else(|| Error::new(format!("{variant}: missing field `{key}`")))
}

fn u64_field(m: &Map, variant: &str, key: &str) -> Result<u64, Error> {
    field(m, variant, key)?
        .as_u64()
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected u64")))
}

fn u32_field(m: &Map, variant: &str, key: &str) -> Result<u32, Error> {
    u64_field(m, variant, key)?
        .try_into()
        .map_err(|_| Error::new(format!("{variant}.{key}: out of range for u32")))
}

fn u8_field(m: &Map, variant: &str, key: &str) -> Result<u8, Error> {
    u64_field(m, variant, key)?
        .try_into()
        .map_err(|_| Error::new(format!("{variant}.{key}: out of range for u8")))
}

fn f64_field(m: &Map, variant: &str, key: &str) -> Result<f64, Error> {
    field(m, variant, key)?
        .as_f64()
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected f64")))
}

fn bool_field(m: &Map, variant: &str, key: &str) -> Result<bool, Error> {
    field(m, variant, key)?
        .as_bool()
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected bool")))
}

fn string_field(m: &Map, variant: &str, key: &str) -> Result<String, Error> {
    field(m, variant, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected string")))
}

/// Parse a string field into the interned `&'static str` vocabulary.
fn label_field(m: &Map, variant: &str, key: &str) -> Result<&'static str, Error> {
    field(m, variant, key)?
        .as_str()
        .map(intern)
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected string")))
}

fn u8_vec_field(m: &Map, variant: &str, key: &str) -> Result<Vec<u8>, Error> {
    field(m, variant, key)?
        .as_array()
        .ok_or_else(|| Error::new(format!("{variant}.{key}: expected array")))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| Error::new(format!("{variant}.{key}: expected u8 element")))
        })
        .collect()
}

/// Hand-rolled inverse of the derived `Serialize` (externally-tagged enum:
/// `{"Variant": {fields}}`). Manual because several fields are `&'static
/// str`, which the derive cannot reconstruct — [`intern`] can.
impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let outer = obj(v, "TraceEvent")?;
        let (tag, body) = outer
            .iter()
            .next()
            .ok_or_else(|| Error::new("TraceEvent: empty object"))?;
        if outer.len() != 1 {
            return Err(Error::new("TraceEvent: expected single-key variant object"));
        }
        let t = tag.as_str();
        let m = obj(body, t)?;
        let ev = match t {
            "TcpState" => TraceEvent::TcpState {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                from: label_field(m, t, "from")?,
                to: label_field(m, t, "to")?,
            },
            "CwndChange" => TraceEvent::CwndChange {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                cwnd: u64_field(m, t, "cwnd")?,
                ssthresh: u64_field(m, t, "ssthresh")?,
                reason: label_field(m, t, "reason")?,
            },
            "Retransmit" => TraceEvent::Retransmit {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                seq: u64_field(m, t, "seq")?,
                len: u32_field(m, t, "len")?,
                kind: label_field(m, t, "kind")?,
            },
            "RtoFired" => TraceEvent::RtoFired {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                rto_ns: u64_field(m, t, "rto_ns")?,
            },
            "Delivered" => TraceEvent::Delivered {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                bytes: u64_field(m, t, "bytes")?,
            },
            "SchedPick" => TraceEvent::SchedPick {
                conn: u32_field(m, t, "conn")?,
                picked: u8_field(m, t, "picked")?,
                candidates: u8_vec_field(m, t, "candidates")?,
                reason: label_field(m, t, "reason")?,
                srtt_ns: u64_field(m, t, "srtt_ns")?,
            },
            "SubflowEstablished" => TraceEvent::SubflowEstablished {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                iface: label_field(m, t, "iface")?,
            },
            "SubflowClosed" => TraceEvent::SubflowClosed {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                reason: label_field(m, t, "reason")?,
            },
            "MpPrio" => TraceEvent::MpPrio {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                backup: bool_field(m, t, "backup")?,
            },
            "RrcTransition" => TraceEvent::RrcTransition {
                from: label_field(m, t, "from")?,
                to: label_field(m, t, "to")?,
            },
            "EnergyLevel" => TraceEvent::EnergyLevel {
                component: label_field(m, t, "component")?,
                watts: f64_field(m, t, "watts")?,
            },
            "PathUsage" => TraceEvent::PathUsage {
                conn: u32_field(m, t, "conn")?,
                decision: label_field(m, t, "decision")?,
            },
            "InvariantViolated" => TraceEvent::InvariantViolated {
                name: label_field(m, t, "name")?,
                detail: string_field(m, t, "detail")?,
            },
            "FaultInjected" => TraceEvent::FaultInjected {
                target: label_field(m, t, "target")?,
                action: string_field(m, t, "action")?,
            },
            "SubflowDead" => TraceEvent::SubflowDead {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                reason: label_field(m, t, "reason")?,
                consecutive_rtos: u64_field(m, t, "consecutive_rtos")?,
                reinjected_bytes: u64_field(m, t, "reinjected_bytes")?,
            },
            "SubflowRevived" => TraceEvent::SubflowRevived {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
                reason: label_field(m, t, "reason")?,
            },
            "BackupPromoted" => TraceEvent::BackupPromoted {
                conn: u32_field(m, t, "conn")?,
                subflow: u8_field(m, t, "subflow")?,
            },
            "RouterDrop" => TraceEvent::RouterDrop {
                router: u32_field(m, t, "router")?,
                port: u32_field(m, t, "port")?,
                reason: label_field(m, t, "reason")?,
            },
            "QueueDepth" => TraceEvent::QueueDepth {
                router: u32_field(m, t, "router")?,
                port: u32_field(m, t, "port")?,
                bytes: u64_field(m, t, "bytes")?,
                capacity: u64_field(m, t, "capacity")?,
            },
            other => return Err(Error::new(format!("unknown TraceEvent variant `{other}`"))),
        };
        Ok(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_table_entry_for_known_labels() {
        assert_eq!(intern("Established"), "Established");
        assert_eq!(intern("queue_full"), "queue_full");
    }

    #[test]
    fn intern_caches_unknown_labels() {
        let a = intern("some_label_not_in_the_table");
        let b = intern("some_label_not_in_the_table");
        assert_eq!(a, b);
        assert!(
            std::ptr::eq(a, b),
            "unknown labels must be cached, not re-leaked"
        );
    }

    #[test]
    fn deserialize_rejects_unknown_variant() {
        let v: Value = serde_json::from_str(r#"{"NoSuchEvent":{"x":1}}"#).unwrap();
        assert!(TraceEvent::from_value(&v).is_err());
    }

    #[test]
    fn deserialize_rejects_missing_field() {
        let v: Value = serde_json::from_str(r#"{"RtoFired":{"conn":1,"subflow":0}}"#).unwrap();
        let err = TraceEvent::from_value(&v).unwrap_err();
        assert!(format!("{err:?}").contains("rto_ns"));
    }
}
