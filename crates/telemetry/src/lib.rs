//! Deterministic observability for the eMPTCP reproduction.
//!
//! Three facilities, all driven by the simulated clock and therefore
//! reproducible bit-for-bit across runs with the same seed:
//!
//! * **event tracing** — typed [`TraceEvent`]s emitted from every layer of
//!   the stack into a [`TraceSink`] (JSONL file, memory buffer, or nothing);
//! * **metrics** — a [`MetricsRegistry`] of counters/gauges/histograms
//!   snapshottable at any [`SimTime`] as deterministic JSON;
//! * **invariants** — an [`InvariantObserver`] that checks stack-wide
//!   conservation properties online and records violations.
//!
//! The entry point is the [`Telemetry`] handle: cheap to clone, thread-safe,
//! and in its [`Telemetry::disabled`] state a single `Option` check — event
//! construction, metric-name formatting and invariant arithmetic are all
//! skipped via closures, so an uninstrumented run pays essentially nothing.
//!
//! Instrumented components hold a [`TelemetryScope`] (a handle plus the
//! connection/subflow ids identifying the component), defaulting to
//! disabled so constructors don't change; the host simulation wires real
//! scopes in when tracing is requested.

mod events;
pub mod invariant;
pub mod log;
pub mod metrics;
mod sink;

pub use events::{TraceEvent, DELIVERED_EMIT_BYTES};
pub use invariant::{InvariantObserver, Violation};
pub use metrics::{
    parse_router_port_metric, parse_shard_metric, router_port_metric, shard_metric, Histogram,
    MetricsRegistry,
};
pub use sink::{jsonl_line, parse_jsonl_line, JsonlSink, MemorySink, NullSink, TeeSink, TraceSink};

use emptcp_sim::SimTime;
use std::sync::{Arc, Mutex};

struct Inner {
    sink: Mutex<Box<dyn TraceSink>>,
    metrics: Mutex<MetricsRegistry>,
    invariants: Option<Mutex<InvariantObserver>>,
    /// True when the sink actually records events (not a [`NullSink`]).
    traced: bool,
}

/// Handle to a telemetry pipeline. Clones share the same sink, metrics
/// registry and invariant observer.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Configures and builds a [`Telemetry`] pipeline.
pub struct Builder {
    sink: Box<dyn TraceSink>,
    invariants: bool,
}

impl Telemetry {
    /// A telemetry handle that records nothing; the emit path is a single
    /// branch and event closures never run.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Start building an enabled pipeline (defaults: no trace sink,
    /// metrics on, invariants off).
    pub fn builder() -> Builder {
        Builder {
            sink: Box::new(NullSink),
            invariants: false,
        }
    }

    /// True when any telemetry facility is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when emitted events are actually recorded somewhere (the
    /// pipeline was built with a non-null sink). Parallel harnesses use
    /// this to serialize work whose trace ordering must be reproducible.
    #[inline]
    pub fn tracing_active(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.traced)
    }

    /// Emit a trace event; the closure only runs when telemetry is enabled.
    #[inline]
    pub fn emit_with(&self, t: SimTime, make: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let event = make();
            inner
                .sink
                .lock()
                .expect("trace sink poisoned")
                .record(t, &event);
        }
    }

    /// Emit an already-constructed trace event.
    pub fn emit(&self, t: SimTime, event: TraceEvent) {
        self.emit_with(t, || event);
    }

    /// Run `f` against the metrics registry; skipped when disabled, so
    /// metric-name formatting stays off the disabled hot path.
    #[inline]
    pub fn with_metrics(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.metrics.lock().expect("metrics poisoned"));
        }
    }

    /// True when invariant checking was enabled at build time.
    #[inline]
    pub fn invariants_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.invariants.is_some())
    }

    /// Run `f` against the invariant observer (skipped unless invariants
    /// are enabled). Any violations `f` records are also emitted as
    /// [`TraceEvent::InvariantViolated`] events and counted under the
    /// `invariants.violations` metric.
    pub fn check_invariants(&self, t: SimTime, f: impl FnOnce(&mut InvariantObserver)) {
        let Some(inner) = &self.inner else { return };
        let Some(observer) = &inner.invariants else {
            return;
        };
        let new: Vec<Violation> = {
            let mut obs = observer.lock().expect("invariant observer poisoned");
            let before = obs.violations().len();
            f(&mut obs);
            obs.violations()[before..].to_vec()
        };
        for v in new {
            self.with_metrics(|m| m.counter_add("invariants.violations", 1));
            self.emit(
                t,
                TraceEvent::InvariantViolated {
                    name: v.name,
                    detail: v.detail,
                },
            );
        }
    }

    /// All invariant violations recorded so far (empty when checking is
    /// disabled).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.invariants.as_ref())
            .map(|obs| {
                obs.lock()
                    .expect("invariant observer poisoned")
                    .violations()
                    .to_vec()
            })
            .unwrap_or_default()
    }

    /// A deterministic JSON snapshot of the metrics registry at time `at`,
    /// or `None` when telemetry is disabled.
    pub fn metrics_snapshot(&self, at: SimTime) -> Option<serde_json::Value> {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.lock().expect("metrics poisoned").snapshot(at))
    }

    /// Clone out the current metrics registry (for merging across runs).
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.inner
            .as_ref()
            .map(|inner| inner.metrics.lock().expect("metrics poisoned").clone())
    }

    /// Flush the trace sink (call once at end of run).
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.sink.lock().expect("trace sink poisoned").flush(),
            None => Ok(()),
        }
    }

    /// Derive a scope for connection `conn`.
    pub fn scope(&self, conn: u32) -> TelemetryScope {
        TelemetryScope {
            telemetry: self.clone(),
            conn,
            subflow: 0,
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Builder {
    /// Attach a trace sink receiving every emitted event.
    pub fn sink(mut self, sink: Box<dyn TraceSink>) -> Builder {
        self.sink = sink;
        self
    }

    /// Enable online invariant checking.
    pub fn invariants(mut self, on: bool) -> Builder {
        self.invariants = on;
        self
    }

    /// Build the enabled telemetry handle.
    pub fn build(self) -> Telemetry {
        let traced = !self.sink.is_null();
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(self.sink),
                metrics: Mutex::new(MetricsRegistry::new()),
                invariants: self
                    .invariants
                    .then(|| Mutex::new(InvariantObserver::new())),
                traced,
            })),
        }
    }
}

/// A [`Telemetry`] handle plus the identity of the component emitting
/// through it: connection id and (where applicable) subflow id.
///
/// `Default`/[`TelemetryScope::disabled`] produce an inert scope, so
/// instrumented structs can hold one unconditionally.
#[derive(Clone, Default)]
pub struct TelemetryScope {
    telemetry: Telemetry,
    /// Connection id this scope reports under.
    pub conn: u32,
    /// Subflow id this scope reports under (0 when not subflow-specific).
    pub subflow: u8,
}

impl std::fmt::Debug for TelemetryScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryScope")
            .field("enabled", &self.enabled())
            .field("conn", &self.conn)
            .field("subflow", &self.subflow)
            .finish()
    }
}

impl TelemetryScope {
    /// An inert scope: nothing is recorded through it.
    pub fn disabled() -> TelemetryScope {
        TelemetryScope::default()
    }

    /// A copy of this scope labelled with a subflow id.
    pub fn with_subflow(&self, subflow: u8) -> TelemetryScope {
        TelemetryScope {
            telemetry: self.telemetry.clone(),
            conn: self.conn,
            subflow,
        }
    }

    /// True when emissions through this scope are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.telemetry.enabled()
    }

    /// Emit an event built by `make`, which receives the scope to pick up
    /// `conn`/`subflow` labels. Runs only when enabled.
    #[inline]
    pub fn emit(&self, t: SimTime, make: impl FnOnce(&TelemetryScope) -> TraceEvent) {
        if self.telemetry.enabled() {
            let event = make(self);
            self.telemetry.emit(t, event);
        }
    }

    /// Access the metrics registry; the closure receives the scope so
    /// metric names can carry `conn`/`subflow` labels. Skipped (no name
    /// formatting) when disabled.
    #[inline]
    pub fn with_metrics(&self, f: impl FnOnce(&TelemetryScope, &mut MetricsRegistry)) {
        self.telemetry.with_metrics(|m| f(self, m));
    }

    /// Run invariant checks through the underlying handle.
    pub fn check_invariants(&self, t: SimTime, f: impl FnOnce(&mut InvariantObserver)) {
        self.telemetry.check_invariants(t, f);
    }

    /// The underlying telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

// ---------------------------------------------------------------------------
// Process-wide default pipeline
// ---------------------------------------------------------------------------

static GLOBAL: Mutex<Option<Telemetry>> = Mutex::new(None);

/// Install a process-wide default telemetry pipeline, picked up by
/// simulations created without an explicit handle. Binaries set this from
/// their CLI flags; library code and tests should prefer passing handles
/// explicitly.
pub fn set_global(telemetry: Telemetry) {
    *GLOBAL.lock().expect("global telemetry poisoned") = Some(telemetry);
}

/// The process-wide default pipeline ([`Telemetry::disabled`] if none was
/// installed).
pub fn global() -> Telemetry {
    GLOBAL
        .lock()
        .expect("global telemetry poisoned")
        .clone()
        .unwrap_or_default()
}

thread_local! {
    /// Per-thread pipeline override; see [`with_current`].
    static THREAD_OVERRIDE: std::cell::RefCell<Option<Telemetry>> =
        const { std::cell::RefCell::new(None) };
}

/// The pipeline simulations created on this thread should report into:
/// the innermost [`with_current`] override if one is active, otherwise
/// the process-wide [`global`] pipeline.
///
/// Parallel experiment runners install a per-exhibit pipeline around each
/// job with [`with_current`], so exhibits running concurrently on a
/// thread pool keep their metrics and traces separated exactly as a
/// serial `set_global`-per-exhibit loop would.
pub fn current() -> Telemetry {
    if let Some(t) = THREAD_OVERRIDE.with(|o| o.borrow().clone()) {
        return t;
    }
    global()
}

/// Run `f` with `telemetry` installed as this thread's [`current`]
/// pipeline, restoring the previous override afterwards (also on panic).
pub fn with_current<R>(telemetry: Telemetry, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Telemetry>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            THREAD_OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.borrow_mut().replace(telemetry));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn disabled_telemetry_never_runs_closures() {
        let tel = Telemetry::disabled();
        tel.emit_with(SimTime::ZERO, || unreachable!("must not construct"));
        tel.with_metrics(|_| unreachable!("must not run"));
        tel.check_invariants(SimTime::ZERO, |_| unreachable!("must not run"));
        assert!(!tel.enabled());
        assert!(tel.metrics_snapshot(SimTime::ZERO).is_none());
    }

    #[test]
    fn events_reach_a_shared_memory_sink() {
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let tel = Telemetry::builder().sink(Box::new(sink.clone())).build();
        tel.emit(
            SimTime::from_millis(5),
            TraceEvent::RrcTransition {
                from: "Idle",
                to: "Promotion",
            },
        );
        assert_eq!(sink.lock().unwrap().records.len(), 1);
    }

    #[test]
    fn invariant_violations_surface_as_events_and_metrics() {
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let tel = Telemetry::builder()
            .sink(Box::new(sink.clone()))
            .invariants(true)
            .build();
        tel.check_invariants(SimTime::from_secs(1), |obs| {
            obs.check_ack_conservation(SimTime::from_secs(1), "sf0", 10, 5);
        });
        assert_eq!(tel.violations().len(), 1);
        assert_eq!(tel.metrics().unwrap().counter("invariants.violations"), 1);
        let records = &sink.lock().unwrap().records;
        assert!(matches!(
            records[0].1,
            TraceEvent::InvariantViolated {
                name: "ack_conservation",
                ..
            }
        ));
    }

    #[test]
    fn tracing_active_tracks_the_sink() {
        assert!(!Telemetry::disabled().tracing_active());
        assert!(!Telemetry::builder().build().tracing_active());
        let traced = Telemetry::builder()
            .sink(Box::new(MemorySink::new()))
            .build();
        assert!(traced.tracing_active());
    }

    #[test]
    fn with_current_shadows_and_restores() {
        let outer = Telemetry::builder().build();
        let inner = Telemetry::builder().build();
        with_current(outer.clone(), || {
            current().with_metrics(|m| m.counter_add("outer", 1));
            with_current(inner.clone(), || {
                current().with_metrics(|m| m.counter_add("inner", 1));
            });
            current().with_metrics(|m| m.counter_add("outer", 1));
        });
        assert_eq!(outer.metrics().unwrap().counter("outer"), 2);
        assert_eq!(outer.metrics().unwrap().counter("inner"), 0);
        assert_eq!(inner.metrics().unwrap().counter("inner"), 1);
    }

    #[test]
    fn scopes_carry_ids() {
        let sink = Arc::new(Mutex::new(MemorySink::new()));
        let tel = Telemetry::builder().sink(Box::new(sink.clone())).build();
        let scope = tel.scope(3).with_subflow(1);
        scope.emit(SimTime::ZERO, |s| TraceEvent::SubflowClosed {
            conn: s.conn,
            subflow: s.subflow,
            reason: "fin",
        });
        assert_eq!(
            sink.lock().unwrap().records[0].1,
            TraceEvent::SubflowClosed {
                conn: 3,
                subflow: 1,
                reason: "fin"
            }
        );
    }
}
