//! Minimal leveled logger for the experiment binaries.
//!
//! Status output (progress lines, timings) goes through here instead of
//! bare `eprintln!`, so `--quiet` can silence it uniformly. The level is a
//! process-wide atomic: binaries set it once from their flags. All log
//! output goes to stderr; stdout stays reserved for experiment *results*.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, in increasing order of chattiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing but hard errors.
    Quiet = 0,
    /// Warnings (caught invariant violations, degraded runs).
    Warn = 1,
    /// Normal progress output (the default).
    Info = 2,
    /// Extra detail for debugging.
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the process-wide log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// True if a message at `at` would currently be printed.
pub fn enabled(at: Level) -> bool {
    at != Level::Quiet && at <= level()
}

#[doc(hidden)]
pub fn log(at: Level, args: std::fmt::Arguments<'_>) {
    if enabled(at) {
        match at {
            Level::Warn => eprintln!("warning: {args}"),
            _ => eprintln!("{args}"),
        }
    }
}

/// Log at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Log at info level (normal progress output).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at debug level.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_output() {
        // Don't mutate the global in parallel tests; just check the
        // comparison logic the gate uses.
        assert!(Level::Warn <= Level::Info);
        assert!(Level::Debug > Level::Info);
        assert!(!enabled(Level::Quiet));
    }
}
