//! Metrics registry: named counters, gauges and histograms.
//!
//! Counters and histograms are *commutative* — merging two registries sums
//! them — so per-run registries from parallel experiment repetitions can be
//! aggregated into one deterministic summary regardless of thread
//! interleaving. Gauges are last-write-wins and are meant for single-run
//! snapshots (instantaneous power level, final energy split).
//!
//! Keys are stored in `BTreeMap`s so every snapshot serializes in sorted
//! key order: same run ⇒ byte-identical JSON.

use emptcp_sim::SimTime;
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Streaming histogram: count/sum/min/max plus power-of-two magnitude
/// buckets (bucket `i` counts values `v` with `ceil(log2(v+1)) == i`).
/// Quantiles read from the buckets are approximate (within a factor of 2),
/// which is plenty for RTT-distribution summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.buckets[Self::bucket_of(value)] += 1;
    }

    fn bucket_of(value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        let v = value as u64;
        (64 - v.leading_zeros() as usize).min(63)
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile from the magnitude buckets: the upper bound of
    /// the bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
    }

    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("count", Value::U64(self.count));
        m.insert("sum", Value::F64(self.sum));
        m.insert(
            "min",
            Value::F64(if self.count == 0 { 0.0 } else { self.min }),
        );
        m.insert(
            "max",
            Value::F64(if self.count == 0 { 0.0 } else { self.max }),
        );
        m.insert("mean", Value::F64(self.mean()));
        m.insert("p50", Value::F64(self.quantile(0.50)));
        m.insert("p90", Value::F64(self.quantile(0.90)));
        m.insert("p99", Value::F64(self.quantile(0.99)));
        Value::Object(m)
    }
}

/// Canonical metric key for a router output-port statistic:
/// `net.router{router}.port{port}.{field}`.
///
/// Every emitter *and* every consumer (fabric metric publishing, the
/// observability aggregator, summaries) must build these keys through this
/// one helper so the name scheme cannot drift between writer and reader.
pub fn router_port_metric(router: u32, port: u32, field: &str) -> String {
    format!("net.router{router}.port{port}.{field}")
}

/// Parse a key produced by [`router_port_metric`] back into
/// `(router, port, field)`. Returns `None` for keys outside the scheme.
pub fn parse_router_port_metric(key: &str) -> Option<(u32, u32, &str)> {
    let rest = key.strip_prefix("net.router")?;
    let (router, rest) = rest.split_once(".port")?;
    let (port, field) = rest.split_once('.')?;
    Some((router.parse().ok()?, port.parse().ok()?, field))
}

/// Canonical metric key for a per-shard fleet statistic:
/// `fleet.shard{shard}.{field}`. Same single-helper discipline as
/// [`router_port_metric`]: the sharded fleet engine emits through this, and
/// the experiment roll-up recognizes `shard{N}` as an instance segment so
/// families sum across shard counts.
pub fn shard_metric(shard: u32, field: &str) -> String {
    format!("fleet.shard{shard}.{field}")
}

/// Parse a key produced by [`shard_metric`] back into `(shard, field)`.
/// Returns `None` for keys outside the scheme.
pub fn parse_shard_metric(key: &str) -> Option<(u32, &str)> {
    let rest = key.strip_prefix("fleet.shard")?;
    let (shard, field) = rest.split_once('.')?;
    Some((shard.parse().ok()?, field))
}

/// Registry of named metrics. One per instrumented run (or one global per
/// experiment batch — counters merge deterministically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order (for summaries and roll-ups).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters and histograms sum;
    /// gauges take the other's value).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Deterministic JSON snapshot at simulation time `at`.
    pub fn snapshot(&self, at: SimTime) -> Value {
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::U64(*v));
        }
        let mut gauges = Map::new();
        for (k, v) in &self.gauges {
            gauges.insert(k.clone(), Value::F64(*v));
        }
        let mut histograms = Map::new();
        for (k, h) in &self.histograms {
            histograms.insert(k.clone(), h.to_value());
        }
        let mut root = Map::new();
        root.insert("t_ns", Value::U64(at.as_nanos()));
        root.insert("counters", Value::Object(counters));
        root.insert("gauges", Value::Object(gauges));
        root.insert("histograms", Value::Object(histograms));
        Value::Object(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("tcp.retransmits", 1);
        m.counter_add("tcp.retransmits", 2);
        assert_eq!(m.counter("tcp.retransmits"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_take_last_value() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("power.w", 1.5);
        m.gauge_set("power.w", 0.5);
        assert_eq!(m.gauge("power.w"), Some(0.5));
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut m = MetricsRegistry::new();
        for v in [10.0, 20.0, 30.0, 40.0] {
            m.observe("rtt", v);
        }
        let h = m.histogram("rtt").unwrap();
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 20.0);
        assert!(h.quantile(0.99) >= 40.0);
    }

    #[test]
    fn merge_is_commutative_for_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.observe("h", 4.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 5);
        b.observe("h", 64.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.counter("y"), 5);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn router_port_metric_round_trips() {
        let key = router_port_metric(3, 17, "drops.queue_full");
        assert_eq!(key, "net.router3.port17.drops.queue_full");
        assert_eq!(
            parse_router_port_metric(&key),
            Some((3, 17, "drops.queue_full"))
        );
        assert_eq!(parse_router_port_metric("net.router3.port17"), None);
        assert_eq!(parse_router_port_metric("conn0.iface.wifi.rx_bytes"), None);
        assert_eq!(parse_router_port_metric("net.routerX.port1.drops"), None);
    }

    #[test]
    fn shard_metric_round_trips() {
        let key = shard_metric(5, "events");
        assert_eq!(key, "fleet.shard5.events");
        assert_eq!(parse_shard_metric(&key), Some((5, "events")));
        assert_eq!(parse_shard_metric("fleet.shard5"), None);
        assert_eq!(parse_shard_metric("fleet.shardX.events"), None);
        assert_eq!(parse_shard_metric("net.router0.port0.delivered"), None);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
        let m = MetricsRegistry::new();
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn single_sample_histogram_quantiles() {
        let mut h = Histogram::default();
        h.record(100.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 100.0);
        // Every quantile of a one-sample distribution is that sample's
        // bucket bound: 100 lands in bucket 7, upper bound 128.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 128.0, "q={q}");
        }
    }

    #[test]
    fn zero_and_negative_samples_land_in_bucket_zero() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn saturating_magnitude_clamps_to_top_bucket() {
        let mut h = Histogram::default();
        h.record(f64::MAX);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        // Values beyond u64 range saturate into bucket 63, whose nominal
        // upper bound 2^63 is what the approximate quantile reports.
        let top = (1u64 << 63) as f64;
        assert_eq!(h.quantile(1.0), top);
        assert_eq!(h.quantile(0.5), top);
        // The exact max is still tracked alongside the buckets.
        assert_eq!(h.sum(), f64::MAX + 1e300);
    }

    #[test]
    fn quantile_out_of_range_is_clamped() {
        let mut h = Histogram::default();
        h.record(3.0);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn merge_into_empty_copies_min_max() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        b.record(7.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a, b);
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn snapshot_serializes_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("zz", 1);
        m.counter_add("aa", 2);
        m.gauge_set("g", 1.0);
        let s1 = serde_json::to_string(&m.snapshot(SimTime::from_secs(1))).unwrap();
        let s2 = serde_json::to_string(&m.snapshot(SimTime::from_secs(1))).unwrap();
        assert_eq!(s1, s2);
        let aa = s1.find("\"aa\"").unwrap();
        let zz = s1.find("\"zz\"").unwrap();
        assert!(aa < zz, "keys must serialize sorted");
    }
}
