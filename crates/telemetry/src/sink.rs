//! Trace sinks: where emitted events go.

use crate::events::TraceEvent;
use emptcp_sim::SimTime;
use serde::{Deserialize, Error, Serialize};
use std::io::{self, Write};

/// Consumer of timestamped trace events.
///
/// Implementations must be deterministic functions of the event stream:
/// given the same sequence of `(t, event)` calls, the observable output
/// (bytes written, records stored) must be byte-identical. That property
/// is what lets "same seed ⇒ same trace" be a regression test.
pub trait TraceSink: Send {
    fn record(&mut self, t: SimTime, event: &TraceEvent);

    /// Flush any buffered output. Called once when a run finishes.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// True when records are discarded ([`NullSink`]). The experiment
    /// runner uses this to keep run fan-out serial while a real trace is
    /// being written, so trace files stay byte-identical across job
    /// counts.
    fn is_null(&self) -> bool {
        false
    }
}

/// Sink that drops everything. Used by [`crate::Telemetry::disabled`];
/// the emit path never even constructs events in that case, so this type
/// mostly exists so enabled-but-traceless telemetry (metrics only) has a
/// sink to point at.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _t: SimTime, _event: &TraceEvent) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Sink that serializes each event as one compact JSON object per line:
/// `{"t_ns": <u64>, "event": <externally-tagged event>}`.
pub struct JsonlSink<W: Write + Send> {
    out: io::BufWriter<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: io::BufWriter::new(out),
        }
    }
}

/// Serialize one event to its single-line JSONL form.
pub fn jsonl_line(t: SimTime, event: &TraceEvent) -> String {
    let mut obj = serde_json::Map::new();
    obj.insert("t_ns", serde_json::Value::U64(t.as_nanos()));
    obj.insert("event", event.to_value());
    serde_json::to_string(&serde_json::Value::Object(obj)).expect("serialization is infallible")
}

/// Parse one JSONL trace line back into `(t, event)` — the exact inverse of
/// [`jsonl_line`]. Replay tooling is built on this, so a value that
/// round-trips through `jsonl_line` must always parse back equal (enforced by
/// the exhaustive round-trip test in `tests/event_roundtrip.rs`).
pub fn parse_jsonl_line(line: &str) -> Result<(SimTime, TraceEvent), Error> {
    let v: serde_json::Value = serde_json::from_str(line)?;
    let t_ns = v
        .get("t_ns")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| Error::new("trace line: missing or non-u64 `t_ns`"))?;
    let event = v
        .get("event")
        .ok_or_else(|| Error::new("trace line: missing `event`"))?;
    Ok((SimTime::from_nanos(t_ns), TraceEvent::from_value(event)?))
}

/// Sink that broadcasts every event to several downstream sinks, in order.
/// This is how a live run simultaneously records a JSONL trace *and* feeds
/// the streaming observability pipeline without buffering the whole trace.
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        for sink in &mut self.sinks {
            sink.record(t, event);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        Ok(())
    }

    /// A tee is null only when every branch is; one real consumer is enough
    /// to require the serial-fan-out determinism path.
    fn is_null(&self) -> bool {
        self.sinks.iter().all(|s| s.is_null())
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        let line = jsonl_line(t, event);
        // IO errors on a trace sink abort loudly: a silently truncated
        // trace would defeat the byte-identical determinism guarantee.
        self.out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
            .expect("trace sink write failed");
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Shared sinks: a cloneable `Arc<Mutex<S>>` is itself a sink, letting the
/// caller keep a handle to read results back after the run (e.g. a
/// [`MemorySink`] in the determinism test).
impl<S: TraceSink> TraceSink for std::sync::Arc<std::sync::Mutex<S>> {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        self.lock().expect("shared sink poisoned").record(t, event);
    }

    fn flush(&mut self) -> io::Result<()> {
        self.lock().expect("shared sink poisoned").flush()
    }

    fn is_null(&self) -> bool {
        self.lock().expect("shared sink poisoned").is_null()
    }
}

/// Sink that keeps every event in memory; used by tests and the
/// determinism regression test.
#[derive(Debug, Default)]
pub struct MemorySink {
    pub records: Vec<(SimTime, TraceEvent)>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Render the captured events as JSONL bytes, exactly as a
    /// [`JsonlSink`] would have written them.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (t, ev) in &self.records {
            out.push_str(&jsonl_line(*t, ev));
            out.push('\n');
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        self.records.push((t, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_line_shape_is_stable() {
        let ev = TraceEvent::TcpState {
            conn: 0,
            subflow: 1,
            from: "SynSent",
            to: "Established",
        };
        let line = jsonl_line(SimTime::from_millis(2), &ev);
        assert_eq!(
            line,
            r#"{"t_ns":2000000,"event":{"TcpState":{"conn":0,"subflow":1,"from":"SynSent","to":"Established"}}}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.record(
                SimTime::ZERO,
                &TraceEvent::RrcTransition {
                    from: "Idle",
                    to: "Promotion",
                },
            );
            sink.record(
                SimTime::from_secs(1),
                &TraceEvent::EnergyLevel {
                    component: "cell",
                    watts: 1.5,
                },
            );
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
