//! Differential certification of the sharded fleet engine.
//!
//! The single-shard run *is* the reference: `shards == 1` exercises the
//! identical epoch, barrier and canonical-key machinery, so any
//! divergence at higher shard counts is a partitioning bug by
//! construction. These tests pin, at corpus scale:
//!
//! * byte-identical `FleetReport` JSON for shards ∈ {1, 2, 4, 8};
//! * identical trace streams (every record, in order) through the outer
//!   telemetry pipeline;
//! * identical results from a serial executor and a thread-per-shard
//!   executor (the `--jobs` axis);
//! * all of the above under a fault plan whose actions land mid-epoch and
//!   whose effects cross shard boundaries;
//! * the same properties over arbitrary valid configs (proptest).

use emptcp_faults::{FaultPlan, FaultTarget};
use emptcp_net::{FleetConfig, FleetReport, SerialExecutor, ShardExecutor, ShardedFleetSim};
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{Telemetry, TraceEvent, TraceSink};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Records every trace event the outer pipeline emits.
#[derive(Default)]
struct Capture(Vec<(SimTime, TraceEvent)>);

impl TraceSink for Capture {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        self.0.push((t, event.clone()));
    }
}

/// A deliberately hostile executor: every shard closure on its own OS
/// thread, all barriers left to the engine.
struct ThreadExecutor;

impl ShardExecutor for ThreadExecutor {
    fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        std::thread::scope(|s| {
            for i in 0..n {
                s.spawn(move || f(i));
            }
        });
    }
}

struct RunOutput {
    report_json: String,
    delivered: Vec<u64>,
    trace: Vec<(SimTime, TraceEvent)>,
}

fn run(
    cfg: &FleetConfig,
    shards: usize,
    plan: Option<&FaultPlan>,
    exec: &dyn ShardExecutor,
) -> RunOutput {
    let tap = Arc::new(Mutex::new(Capture::default()));
    let telemetry = Telemetry::builder().sink(Box::new(tap.clone())).build();
    let mut sim = ShardedFleetSim::new_with_telemetry(cfg.clone(), shards, telemetry);
    if let Some(plan) = plan {
        sim.attach_faults(plan.clone());
    }
    let report: FleetReport = sim.run_with(exec);
    let trace = std::mem::take(&mut tap.lock().expect("tap").0);
    RunOutput {
        report_json: serde_json::to_string(&report).expect("report serializes"),
        delivered: sim.per_client_delivered(),
        trace,
    }
}

fn base_config(clients: usize, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::contended(clients, seed);
    cfg.duration = SimDuration::from_secs(2);
    cfg.bottleneck.rate_bps = 20_000_000;
    cfg.cross_sources = 1;
    cfg
}

fn boundary_crossing_plan() -> FaultPlan {
    // Rate collapse with a staged recovery plus an RTT spike, all landing
    // at times that are not multiples of the 1 ms contended-preset
    // lookahead epoch, so applications happen mid-epoch and their
    // consequences propagate across shard boundaries.
    FaultPlan::new()
        .bandwidth_collapse(
            FaultTarget::Core,
            SimTime::from_nanos(300_500_000),
            SimDuration::from_millis(400),
            2_000_000,
            &[8_000_000],
            SimDuration::from_millis(250),
        )
        .rtt_spike(
            FaultTarget::Core,
            SimTime::from_nanos(1_200_700_000),
            SimDuration::from_millis(300),
            SimDuration::from_millis(20),
        )
}

#[test]
fn reports_and_traces_are_byte_identical_across_shard_counts() {
    let cfg = base_config(9, 0xD1FF);
    let reference = run(&cfg, 1, None, &SerialExecutor);
    assert!(
        !reference.trace.is_empty(),
        "reference run produced no trace"
    );
    for shards in [2, 4, 8] {
        let got = run(&cfg, shards, None, &SerialExecutor);
        assert_eq!(
            got.report_json, reference.report_json,
            "report diverged at {shards} shards"
        );
        assert_eq!(
            got.delivered, reference.delivered,
            "per-client delivered bytes diverged at {shards} shards"
        );
        assert_eq!(
            got.trace, reference.trace,
            "trace diverged at {shards} shards"
        );
    }
}

#[test]
fn fault_plans_crossing_shard_boundaries_stay_identical() {
    let cfg = base_config(8, 0xFA17);
    let plan = boundary_crossing_plan();
    let reference = run(&cfg, 1, Some(&plan), &SerialExecutor);
    let report: serde_json::Value =
        serde_json::from_str(&reference.report_json).expect("report parses");
    let faults = report["faults_injected"].as_f64().expect("faults field");
    assert!(faults >= 2.0, "plan only applied {faults} actions");
    for shards in [2, 4, 8] {
        let got = run(&cfg, shards, Some(&plan), &SerialExecutor);
        assert_eq!(
            got.report_json, reference.report_json,
            "faulted report diverged at {shards} shards"
        );
        assert_eq!(
            got.trace, reference.trace,
            "faulted trace diverged at {shards} shards"
        );
    }
}

#[test]
fn thread_executor_matches_serial_executor() {
    let cfg = base_config(8, 0x10B5);
    let plan = boundary_crossing_plan();
    for shards in [1, 4, 8] {
        let serial = run(&cfg, shards, Some(&plan), &SerialExecutor);
        let threaded = run(&cfg, shards, Some(&plan), &ThreadExecutor);
        assert_eq!(
            threaded.report_json, serial.report_json,
            "threaded report diverged at {shards} shards"
        );
        assert_eq!(
            threaded.trace, serial.trace,
            "threaded trace diverged at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary valid configs: any partition of any population must be
    /// invisible in the report, the delivered bytes, and the trace.
    #[test]
    fn arbitrary_configs_are_partition_invariant(
        clients in 1usize..10,
        mptcp_every in 0usize..4,
        duration_ms in 100u64..400,
        cross in 0usize..2,
        access_prop_us in 200u64..3000,
        bottleneck_prop_us in 500u64..12_000,
        coupled in 0u64..2,
        with_faults in 0u64..2,
        seed in 0u64..u64::MAX,
    ) {
        let mut cfg = FleetConfig::contended(clients, seed);
        cfg.mptcp_every = mptcp_every;
        cfg.coupled = coupled == 1;
        cfg.duration = SimDuration::from_millis(duration_ms);
        cfg.cross_sources = cross;
        cfg.bottleneck.rate_bps = 15_000_000;
        cfg.bottleneck.prop_delay = SimDuration::from_micros(bottleneck_prop_us);
        cfg.access_a.prop_delay = SimDuration::from_micros(access_prop_us);
        cfg.access_b.prop_delay = SimDuration::from_micros(access_prop_us * 3);
        let plan = (with_faults == 1).then(|| {
            FaultPlan::new().bandwidth_collapse(
                FaultTarget::Core,
                SimTime::from_millis(duration_ms / 4),
                SimDuration::from_millis(duration_ms / 4),
                1_000_000,
                &[],
                SimDuration::from_millis(10),
            )
        });
        let reference = run(&cfg, 1, plan.as_ref(), &SerialExecutor);
        for shards in [2usize, 4, 8] {
            let got = run(&cfg, shards, plan.as_ref(), &SerialExecutor);
            prop_assert_eq!(
                &got.report_json, &reference.report_json,
                "report diverged at {} shards", shards
            );
            prop_assert_eq!(
                &got.delivered, &reference.delivered,
                "delivered diverged at {} shards", shards
            );
            prop_assert_eq!(
                &got.trace, &reference.trace,
                "trace diverged at {} shards", shards
            );
        }
    }
}
