//! Golden pin of the fleet drain path.
//!
//! A fixed-seed contended fleet run must deliver exactly the same bytes to
//! every client and record exactly the same trace — byte for byte — as it
//! did before the hot-path rewrite (timing-wheel event queue, slab-backed
//! segments, batched drain). The constants below were captured from the
//! pre-rewrite engine; any behavioural drift in the queue merge order, the
//! drain loop, or the fabric shows up here as a changed byte count or a
//! changed trace hash long before it would surface as a subtle fairness or
//! energy shift in an exhibit.
//!
//! If this test fails after an intentional semantic change, re-capture with
//! `cargo test -p emptcp-net --test drain_golden -- --nocapture` and update
//! the constants together with a CHANGES.md note — never silently.

use emptcp_net::{FleetConfig, FleetSim};
use emptcp_sim::SimDuration;
use emptcp_telemetry::{MemorySink, Telemetry, TraceSink};
use std::sync::{Arc, Mutex};

/// FNV-1a over the rendered JSONL trace: stable, dependency-free, and
/// sensitive to any single-byte drift anywhere in the event stream.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Golden {
    per_client_bytes: Vec<u64>,
    trace_hash: u64,
    trace_lines: usize,
}

fn run_traced(cfg: FleetConfig) -> Golden {
    let record = Arc::new(Mutex::new(MemorySink::new()));
    let sink: Box<dyn TraceSink> = Box::new(Arc::clone(&record));
    let telemetry = Telemetry::builder().sink(sink).build();
    let mut sim = FleetSim::new_with_telemetry(cfg, telemetry.clone());
    sim.run();
    telemetry.flush().expect("flush");
    let jsonl = record.lock().unwrap().to_jsonl();
    Golden {
        per_client_bytes: sim.per_client_delivered(),
        trace_hash: fnv1a64(jsonl.as_bytes()),
        trace_lines: jsonl.lines().count(),
    }
}

/// The contended preset exercises every hot-path ingredient at once:
/// mixed TCP/MPTCP stacks, cross-traffic, queue drops + ECN marks at the
/// bottleneck, delayed-ack timers, and RTO re-arms.
fn contended_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::contended(6, 7);
    cfg.duration = SimDuration::from_secs(2);
    cfg
}

#[test]
fn contended_fleet_drain_path_matches_pre_rewrite_goldens() {
    let g = run_traced(contended_cfg());
    println!("contended per_client_bytes = {:?}", g.per_client_bytes);
    println!(
        "contended trace_hash = {:#018x} lines = {}",
        g.trace_hash, g.trace_lines
    );
    assert_eq!(
        g.per_client_bytes,
        [5_058_099, 2_371_913, 3_801_745, 2_637_071, 3_588_577, 3_159_716],
        "per-client delivered bytes drifted from the pre-rewrite capture"
    );
    assert_eq!(
        g.trace_hash, 0x135d_2d61_47b6_0859,
        "trace hash drifted from the pre-rewrite capture"
    );
    assert_eq!(g.trace_lines, 23_544, "trace line count drifted");
}

/// The do-no-harm cell runs the fairness-critical path: one LIA-coupled
/// MPTCP client against one TCP client on a tight core. Its trace pins the
/// coupled congestion-control decisions end to end.
#[test]
fn do_no_harm_cell_drain_path_matches_pre_rewrite_goldens() {
    let g = run_traced(FleetConfig::do_no_harm_cell(3));
    println!("dnh per_client_bytes = {:?}", g.per_client_bytes);
    println!(
        "dnh trace_hash = {:#018x} lines = {}",
        g.trace_hash, g.trace_lines
    );
    assert_eq!(
        g.per_client_bytes,
        [7_166_363, 7_170_231],
        "per-client delivered bytes drifted from the pre-rewrite capture"
    );
    assert_eq!(
        g.trace_hash, 0xa490_2a48_23d6_e9a2,
        "trace hash drifted from the pre-rewrite capture"
    );
    assert_eq!(g.trace_lines, 15_520, "trace line count drifted");
}
