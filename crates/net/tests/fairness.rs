//! LIA "do no harm" golden test (RFC 6356 goal 2, the paper's fairness
//! premise): at a shared bottleneck, an MPTCP connection's aggregate must
//! not take (much) more capacity than a single-path TCP flow — and the
//! uncoupled ablation shows that this is LIA's doing, not an accident of
//! the topology.

use emptcp_net::{FleetConfig, FleetSim};

fn ratio(coupled: bool, seed: u64) -> f64 {
    let mut cfg = FleetConfig::do_no_harm_cell(seed);
    cfg.coupled = coupled;
    let report = FleetSim::new(cfg).run();
    assert!(
        report.mptcp_mean_mbps > 0.5 && report.tcp_mean_mbps > 0.5,
        "both flows must make real progress: {report:?}"
    );
    report.mptcp_tcp_ratio
}

#[test]
fn lia_does_no_harm_at_a_shared_bottleneck() {
    for seed in [1u64, 42, 0xE0_07C9] {
        let lia = ratio(true, seed);
        // The bound is deliberately loose — scheduling still jitters the
        // split — but it must hold from both sides: MPTCP neither starves
        // nor meaningfully beats the competing TCP flow.
        assert!(
            (0.6..=1.35).contains(&lia),
            "seed {seed}: LIA ratio {lia} outside do-no-harm bounds"
        );
    }
}

#[test]
fn uncoupled_subflows_take_more_than_lia() {
    for seed in [1u64, 42, 0xE0_07C9] {
        let lia = ratio(true, seed);
        let reno = ratio(false, seed);
        // Two uncoupled Reno subflows behave like two flows against one.
        assert!(
            reno > lia + 0.2,
            "seed {seed}: uncoupled {reno} not clearly above LIA {lia}"
        );
        assert!(reno > 1.25, "seed {seed}: uncoupled ratio {reno} too tame");
    }
}
