//! Deterministic multi-hop network fabric for the eMPTCP testbed.
//!
//! Where `emptcp-expr`'s host simulation models one device with two
//! dedicated access paths, this crate models the *network between*
//! devices: a topology graph of hosts and routers ([`topology`]), router
//! output ports with drop-tail queues and ECN-style accounting built on
//! the same rate-serializing [`Link`](emptcp_phy::Link) ([`port`]), a
//! routed fabric that implements the fault surface ([`fabric`]), and a
//! fleet harness that runs many independent TCP/MPTCP client stacks over
//! one shared bottleneck ([`fleet`]).
//!
//! Everything is driven by the shared discrete-event queue and forked
//! [`SimRng`](emptcp_sim::SimRng) streams, so a fleet run is a pure
//! function of its config and seed — the property the parallel experiment
//! runner relies on for byte-identical output at any `--jobs` level.
//!
//! For populations beyond what one event queue can turn over, [`shard`]
//! partitions the fleet into conservative-lookahead shards over flyweight
//! struct-of-arrays client rows ([`ShardedFleetSim`]), preserving
//! byte-identical reports and traces for every `(jobs, shards)`
//! combination; [`reduce`] holds the fixed-order report reductions both
//! engines share.

#![warn(missing_docs)]

pub mod fabric;
pub mod fleet;
pub mod port;
pub mod reduce;
pub mod shard;
pub mod topology;

pub use fabric::{Fabric, Hop};
pub use fleet::{FleetConfig, FleetConfigError, FleetReport, FleetSim};
pub use port::{Port, PortOutcome};
pub use shard::{lookahead, SerialExecutor, ShardExecutor, ShardedFleetSim};
pub use topology::{NodeId, NodeKind, Topology, TopologyBuilder};
