//! Router output ports.
//!
//! A [`Port`] is one directed edge of the fabric made operational: a
//! rate-serializing, drop-tail [`Link`] plus the bookkeeping a router
//! needs around it — nominal configuration for fault restore, an
//! ECN-style marking threshold with edge-triggered queue-depth events,
//! and per-reason drop counters surfaced to the metrics registry.
//!
//! ECN here is *accounting-only*: a packet that enters the queue above
//! the threshold is counted (and traced) as marked, but the transports
//! are loss-based, so marks diagnose standing queues rather than drive
//! the control loop.

use crate::topology::NodeId;
use emptcp_phy::link::{DropReason, EnqueueOutcome};
use emptcp_phy::{Link, LinkConfig, LossModel};
use emptcp_sim::{SimDuration, SimRng, SimTime};
use emptcp_telemetry::{TelemetryScope, TraceEvent};

/// One output port: a link leaving `from` toward `to`.
#[derive(Clone, Debug)]
pub struct Port {
    link: Link,
    from: NodeId,
    to: NodeId,
    /// Nominal configuration, restored by fault actions carrying `None`.
    nominal: LinkConfig,
    /// Fault-injected extra one-way delay currently applied.
    extra_delay: SimDuration,
    /// Administratively down (distinct from a rate-0 blackhole).
    admin_down: bool,
    /// Queue depth at/above which entering packets are ECN-marked.
    ecn_threshold: u64,
    /// Whether the queue was above the threshold at the last enqueue
    /// (edge-triggering for `QueueDepth` events).
    above_threshold: bool,
    ecn_marked: u64,
    /// Deepest queue observed at an enqueue, in bytes.
    peak_queue_bytes: u64,
}

/// What happened to a packet offered to a port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortOutcome {
    /// Forwarded; arrives at the far end at this time. `marked` is the
    /// ECN accounting bit (queue was above threshold on entry).
    Forwarded {
        /// Arrival time at the receiving node.
        at: SimTime,
        /// ECN mark (standing queue above threshold).
        marked: bool,
    },
    /// Dropped at this port.
    Dropped(DropReason),
}

impl Port {
    /// A port for the directed edge `from → to`. The ECN threshold
    /// defaults to half the queue capacity.
    pub fn new(from: NodeId, to: NodeId, config: LinkConfig) -> Port {
        Port {
            link: Link::new(config),
            from,
            to,
            nominal: config,
            extra_delay: SimDuration::ZERO,
            admin_down: false,
            ecn_threshold: config.queue_capacity / 2,
            above_threshold: false,
            ecn_marked: 0,
            peak_queue_bytes: 0,
        }
    }

    /// The transmitting node.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The receiving node.
    pub fn to(&self) -> NodeId {
        self.to
    }

    /// The nominal (fault-free) configuration.
    pub fn nominal(&self) -> LinkConfig {
        self.nominal
    }

    /// The underlying link (counters, current rate).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Packets ECN-marked so far.
    pub fn ecn_marked(&self) -> u64 {
        self.ecn_marked
    }

    /// Deepest queue observed at an enqueue.
    pub fn peak_queue_bytes(&self) -> u64 {
        self.peak_queue_bytes
    }

    /// Override the ECN marking threshold (bytes of standing queue).
    pub fn set_ecn_threshold(&mut self, bytes: u64) {
        self.ecn_threshold = bytes;
    }

    /// Whether the port currently accepts traffic at all.
    pub fn is_up(&self) -> bool {
        !self.admin_down && self.link.rate_bps() > 0
    }

    /// Administrative up/down (fault `IfaceDown`/`IfaceUp`). Down forces
    /// the link rate to zero; up restores the nominal rate.
    pub fn set_admin_up(&mut self, now: SimTime, up: bool) {
        self.admin_down = !up;
        let rate = if up { self.nominal.rate_bps } else { 0 };
        self.link.set_rate_bps(now, rate);
    }

    /// Override the rate (`Some`, with `Some(0)` a silent blackhole) or
    /// restore nominal (`None`). A restore while administratively down
    /// stays down until `set_admin_up`.
    pub fn set_rate(&mut self, now: SimTime, rate_bps: Option<u64>) {
        if self.admin_down {
            return;
        }
        self.link
            .set_rate_bps(now, rate_bps.unwrap_or(self.nominal.rate_bps));
    }

    /// Override the loss model or restore the nominal Bernoulli channel.
    pub fn set_loss(&mut self, model: Option<LossModel>) {
        match model {
            Some(m) => self.link.set_loss_model(m),
            None => self.link.set_loss_prob(self.nominal.loss_prob),
        }
    }

    /// Add fault-injected one-way delay (`None` removes it).
    pub fn set_extra_delay(&mut self, extra: Option<SimDuration>) {
        self.extra_delay = extra.unwrap_or(SimDuration::ZERO);
        self.link
            .set_prop_delay(self.nominal.prop_delay + self.extra_delay);
    }

    /// Offer a packet to the port. `router`/`port` identify this port in
    /// trace events; `scope` is the fabric's telemetry scope (zero-cost
    /// when telemetry is disabled).
    pub fn transmit(
        &mut self,
        now: SimTime,
        wire_bytes: u64,
        rng: &mut SimRng,
        router: u32,
        port: u32,
        scope: &TelemetryScope,
    ) -> PortOutcome {
        if self.admin_down {
            self.note_drop(now, DropReason::LinkDown, router, port, scope);
            return PortOutcome::Dropped(DropReason::LinkDown);
        }
        let depth_before = self.link.backlog_bytes(now);
        match self.link.enqueue(now, wire_bytes, rng) {
            EnqueueOutcome::Delivered(at) => {
                let depth = depth_before + wire_bytes;
                self.peak_queue_bytes = self.peak_queue_bytes.max(depth);
                let marked = depth_before >= self.ecn_threshold;
                if marked {
                    self.ecn_marked += 1;
                }
                // Edge-triggered queue-depth events: one on the way up
                // through the threshold, one on the way back down.
                if marked != self.above_threshold {
                    self.above_threshold = marked;
                    let capacity = self.link.queue_capacity();
                    scope.emit(now, |_| TraceEvent::QueueDepth {
                        router,
                        port,
                        bytes: depth,
                        capacity,
                    });
                }
                PortOutcome::Forwarded { at, marked }
            }
            EnqueueOutcome::Dropped(reason) => {
                self.note_drop(now, reason, router, port, scope);
                PortOutcome::Dropped(reason)
            }
        }
    }

    fn note_drop(
        &self,
        now: SimTime,
        reason: DropReason,
        router: u32,
        port: u32,
        scope: &TelemetryScope,
    ) {
        let label = match reason {
            DropReason::Channel => "channel",
            DropReason::QueueFull => "queue_full",
            DropReason::LinkDown => "link_down",
        };
        scope.emit(now, |_| TraceEvent::RouterDrop {
            router,
            port,
            reason: label,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_telemetry::Telemetry;

    fn port(rate_bps: u64, queue: u64) -> Port {
        Port::new(
            NodeId(0),
            NodeId(1),
            LinkConfig {
                rate_bps,
                prop_delay: SimDuration::from_millis(1),
                queue_capacity: queue,
                loss_prob: 0.0,
            },
        )
    }

    #[test]
    fn forwards_and_counts_marks_above_threshold() {
        // 3000 B queue, 1500 B threshold: the third back-to-back packet
        // enters behind ≥ 1500 B of standing queue and is marked.
        let mut p = port(12_000_000, 6000);
        p.set_ecn_threshold(1500);
        let mut rng = SimRng::new(1);
        let scope = Telemetry::disabled().scope(0);
        let mut marks = 0;
        for _ in 0..3 {
            match p.transmit(SimTime::ZERO, 1500, &mut rng, 0, 0, &scope) {
                PortOutcome::Forwarded { marked, .. } => marks += u64::from(marked),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(marks, 2);
        assert_eq!(p.ecn_marked(), 2);
        assert_eq!(p.peak_queue_bytes(), 4500);
    }

    #[test]
    fn admin_down_drops_and_restores() {
        let mut p = port(12_000_000, 6000);
        let mut rng = SimRng::new(1);
        let scope = Telemetry::disabled().scope(0);
        p.set_admin_up(SimTime::ZERO, false);
        assert!(!p.is_up());
        assert_eq!(
            p.transmit(SimTime::ZERO, 100, &mut rng, 0, 0, &scope),
            PortOutcome::Dropped(DropReason::LinkDown)
        );
        // A rate restore while down must not resurrect the port.
        p.set_rate(SimTime::ZERO, None);
        assert!(!p.is_up());
        p.set_admin_up(SimTime::ZERO, true);
        assert!(p.is_up());
        assert!(matches!(
            p.transmit(SimTime::ZERO, 100, &mut rng, 0, 0, &scope),
            PortOutcome::Forwarded { .. }
        ));
    }

    #[test]
    fn fault_overrides_restore_nominal() {
        let mut p = port(12_000_000, 6000);
        p.set_rate(SimTime::ZERO, Some(0));
        assert!(!p.is_up(), "silent blackhole");
        p.set_rate(SimTime::ZERO, None);
        assert_eq!(p.link().rate_bps(), 12_000_000);
        p.set_extra_delay(Some(SimDuration::from_millis(40)));
        assert_eq!(p.link().prop_delay(), SimDuration::from_millis(41));
        p.set_extra_delay(None);
        assert_eq!(p.link().prop_delay(), SimDuration::from_millis(1));
    }
}
