//! The fabric: a topology made operational.
//!
//! A [`Fabric`] instantiates one [`Port`] per directed edge of a
//! [`Topology`] and routes packets hop by hop. It is poll-less like the
//! underlying links: [`Fabric::step`] charges the packet to the current
//! hop's port and returns where (and when) it surfaces next — the caller
//! owns the event queue and schedules the arrival, because downstream
//! queue occupancy depends on arrival times the caller controls.
//!
//! The fabric implements [`FaultSurface`], so the same scripted
//! [`FaultPlan`]s that batter the single-device host can batter a
//! backbone: fault targets are *designated* onto port sets
//! ([`Fabric::designate`]), with [`FaultTarget::Core`] conventionally
//! mapped to the shared bottleneck.
//!
//! [`FaultPlan`]: emptcp_faults::FaultPlan

use crate::port::{Port, PortOutcome};
use crate::topology::{NodeId, Topology};
use emptcp_faults::injector::FaultSurface;
use emptcp_faults::FaultTarget;
use emptcp_phy::link::DropReason;
use emptcp_phy::LossModel;
use emptcp_sim::{SimDuration, SimRng, SimTime};
use emptcp_telemetry::TelemetryScope;

/// Where a packet went after one hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hop {
    /// The packet is at its destination; deliver it to the local stack.
    Arrived,
    /// Committed to a port; it surfaces at `node` at time `at`.
    Forwarded {
        /// The node the packet arrives at next.
        node: NodeId,
        /// When it arrives there.
        at: SimTime,
        /// ECN accounting bit (entered a standing queue above threshold).
        marked: bool,
    },
    /// Dropped by the current hop's output port.
    Dropped(DropReason),
    /// No route from here to the destination.
    Unroutable,
}

/// A running fabric: topology + ports + fault designations.
pub struct Fabric {
    topo: Topology,
    ports: Vec<Port>,
    scope: TelemetryScope,
    /// Port sets the three fault targets map onto.
    wifi_ports: Vec<usize>,
    cellular_ports: Vec<usize>,
    core_ports: Vec<usize>,
}

impl Fabric {
    /// Bring a topology up: one port per directed edge, telemetry off.
    pub fn new(topo: Topology) -> Fabric {
        let ports = (0..topo.edge_count())
            .map(|eid| {
                let e = topo.edge(eid);
                Port::new(e.from, e.to, e.config)
            })
            .collect();
        Fabric {
            topo,
            ports,
            scope: TelemetryScope::disabled(),
            wifi_ports: Vec::new(),
            cellular_ports: Vec::new(),
            core_ports: Vec::new(),
        }
    }

    /// Attach a telemetry scope for `RouterDrop` / `QueueDepth` events.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    /// The frozen topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// A port by id (= directed edge id).
    pub fn port(&self, id: usize) -> &Port {
        &self.ports[id]
    }

    /// Mutable port access (threshold tuning, direct injection tests).
    pub fn port_mut(&mut self, id: usize) -> &mut Port {
        &mut self.ports[id]
    }

    /// Map a fault target onto a set of ports. Core conventionally gets
    /// the shared bottleneck edge(s); Wifi/Cellular get access edges.
    pub fn designate(&mut self, target: FaultTarget, ports: Vec<usize>) {
        match target {
            FaultTarget::Wifi => self.wifi_ports = ports,
            FaultTarget::Cellular => self.cellular_ports = ports,
            FaultTarget::Core => self.core_ports = ports,
        }
    }

    fn designated(&self, target: FaultTarget) -> &[usize] {
        match target {
            FaultTarget::Wifi => &self.wifi_ports,
            FaultTarget::Cellular => &self.cellular_ports,
            FaultTarget::Core => &self.core_ports,
        }
    }

    /// Advance a packet sitting at `at_node` toward `dst` by one hop.
    pub fn step(
        &mut self,
        now: SimTime,
        at_node: NodeId,
        dst: NodeId,
        wire_bytes: u64,
        rng: &mut SimRng,
    ) -> Hop {
        if at_node == dst {
            return Hop::Arrived;
        }
        let Some(eid) = self.topo.route(at_node, dst) else {
            return Hop::Unroutable;
        };
        let next = self.topo.edge(eid).to;
        match self.ports[eid].transmit(now, wire_bytes, rng, at_node.0, eid as u32, &self.scope) {
            PortOutcome::Forwarded { at, marked } => Hop::Forwarded {
                node: next,
                at,
                marked,
            },
            PortOutcome::Dropped(reason) => Hop::Dropped(reason),
        }
    }

    /// Publish per-router drop/ECN counters and peak queue gauges into the
    /// metrics registry (one shot, typically at end of run). Counter names
    /// are built by [`emptcp_telemetry::router_port_metric`] — the one
    /// helper shared with the aggregation side, so emitter and consumer key
    /// schemes cannot drift.
    pub fn publish_metrics(&self) {
        use emptcp_telemetry::router_port_metric;
        self.scope.with_metrics(|_, m| {
            for (eid, port) in self.ports.iter().enumerate() {
                let router = port.from().0;
                let eid = eid as u32;
                let link = port.link();
                m.counter_add(
                    &router_port_metric(router, eid, "delivered"),
                    link.delivered_packets(),
                );
                m.counter_add(
                    &router_port_metric(router, eid, "drops_queue"),
                    link.dropped_queue(),
                );
                m.counter_add(
                    &router_port_metric(router, eid, "drops_channel"),
                    link.dropped_channel(),
                );
                m.counter_add(
                    &router_port_metric(router, eid, "ecn_marked"),
                    port.ecn_marked(),
                );
                m.gauge_set(
                    &router_port_metric(router, eid, "peak_queue_bytes"),
                    port.peak_queue_bytes() as f64,
                );
            }
        });
    }

    /// Total queue drops across all ports (bottleneck pressure at a glance).
    pub fn total_queue_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.link().dropped_queue()).sum()
    }

    /// Total packets forwarded across all ports — the fleet report's
    /// deterministic work measure.
    pub fn total_delivered_packets(&self) -> u64 {
        self.ports
            .iter()
            .map(|p| p.link().delivered_packets())
            .sum()
    }

    /// Total ECN marks across all ports.
    pub fn total_ecn_marks(&self) -> u64 {
        self.ports.iter().map(|p| p.ecn_marked()).sum()
    }
}

impl FaultSurface for Fabric {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        for i in 0..self.designated(target).len() {
            let pid = self.designated(target)[i];
            self.ports[pid].set_admin_up(now, up);
        }
    }

    fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        for i in 0..self.designated(target).len() {
            let pid = self.designated(target)[i];
            self.ports[pid].set_rate(now, rate_bps);
        }
    }

    fn set_loss(&mut self, _now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        for i in 0..self.designated(target).len() {
            let pid = self.designated(target)[i];
            self.ports[pid].set_loss(model);
        }
    }

    fn set_extra_delay(&mut self, _now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        for i in 0..self.designated(target).len() {
            let pid = self.designated(target)[i];
            self.ports[pid].set_extra_delay(extra);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use emptcp_phy::LinkConfig;

    /// a — r — z with a thin r→z hop.
    fn fabric() -> (Fabric, NodeId, NodeId, usize) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r = b.router("r");
        let z = b.host("z");
        b.symmetric_link(a, r, LinkConfig::backbone(SimDuration::from_millis(1)));
        let (thin, _) = b.link(
            r,
            z,
            LinkConfig {
                rate_bps: 1_200_000,
                prop_delay: SimDuration::from_millis(5),
                queue_capacity: 4500,
                loss_prob: 0.0,
            },
            LinkConfig::backbone(SimDuration::from_millis(5)),
        );
        (Fabric::new(b.build()), a, z, thin)
    }

    #[test]
    fn multi_hop_delivery_accumulates_delays() {
        let (mut f, a, z, _) = fabric();
        let mut rng = SimRng::new(1);
        // Hop 1: backbone, 1500 B at 1 Gbps is 12 µs + 1 ms.
        let Hop::Forwarded {
            node: r, at: t1, ..
        } = f.step(SimTime::ZERO, a, z, 1500, &mut rng)
        else {
            panic!("hop 1 failed")
        };
        assert!(t1 > SimTime::from_millis(1));
        // Hop 2: thin 1.2 Mbps, 1500 B is 10 ms + 5 ms propagation.
        let Hop::Forwarded {
            node: end, at: t2, ..
        } = f.step(t1, r, z, 1500, &mut rng)
        else {
            panic!("hop 2 failed")
        };
        assert_eq!(end, z);
        assert_eq!(t2, t1 + SimDuration::from_millis(15));
        assert_eq!(f.step(t2, end, z, 1500, &mut rng), Hop::Arrived);
    }

    #[test]
    fn thin_hop_tail_drops_under_burst() {
        let (mut f, _a, z, thin) = fabric();
        let mut rng = SimRng::new(2);
        let mut drops = 0;
        let mut t = SimTime::ZERO;
        for _ in 0..8 {
            // All offered back-to-back at the router: 4500 B of queue holds
            // three packets; the rest tail-drop.
            if matches!(
                f.step(t, f.topology().edge(thin).from, z, 1500, &mut rng),
                Hop::Dropped(DropReason::QueueFull)
            ) {
                drops += 1;
            }
            t += SimDuration::from_micros(10);
        }
        assert!(drops >= 4, "{drops} drops");
        assert_eq!(f.total_queue_drops(), drops);
        assert!(f.total_ecn_marks() >= 1);
    }

    #[test]
    fn core_fault_designation_hits_the_bottleneck() {
        let (mut f, a, z, thin) = fabric();
        f.designate(FaultTarget::Core, vec![thin]);
        let mut rng = SimRng::new(3);
        f.set_rate(SimTime::ZERO, FaultTarget::Core, Some(0));
        let r = f.topology().edge(thin).from;
        assert_eq!(
            f.step(SimTime::ZERO, r, z, 1500, &mut rng),
            Hop::Dropped(DropReason::LinkDown)
        );
        // The access edge is untouched.
        assert!(matches!(
            f.step(SimTime::ZERO, a, z, 1500, &mut rng),
            Hop::Forwarded { .. }
        ));
        f.set_rate(SimTime::ZERO, FaultTarget::Core, None);
        assert!(matches!(
            f.step(SimTime::ZERO, r, z, 1500, &mut rng),
            Hop::Forwarded { .. }
        ));
    }

    #[test]
    fn unroutable_when_no_path() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let z = b.host("z");
        let mut f = Fabric::new(b.build());
        let mut rng = SimRng::new(4);
        assert_eq!(f.step(SimTime::ZERO, a, z, 100, &mut rng), Hop::Unroutable);
    }
}
