//! Fixed-order report reductions shared by the fleet engines.
//!
//! Floating-point addition is not associative, so the *order* in which
//! per-client values are folded into the aggregate, the per-population
//! means and the Jain index is part of the byte-identity contract: the
//! unsharded [`FleetSim`](crate::fleet::FleetSim) and the sharded
//! [`ShardedFleetSim`](crate::shard::ShardedFleetSim) must fold in the
//! identical order regardless of how clients were partitioned across
//! shards or worker threads. Every reduction here iterates in ascending
//! client id — the one order both engines can reproduce for free — and
//! both engines are required to build these summaries through this module
//! rather than inline.

/// Goodput in Mbit/s for `bytes` delivered over `secs` seconds.
pub fn mbps(bytes: u64, secs: f64) -> f64 {
    bytes as f64 * 8.0 / secs / 1e6
}

/// The fairness block of a [`FleetReport`](crate::fleet::FleetReport),
/// reduced from per-client goodput in ascending-client-id order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FairnessStats {
    /// Sum of per-client goodput.
    pub aggregate_mbps: f64,
    /// Mean goodput of the MPTCP clients (0 when none).
    pub mptcp_mean_mbps: f64,
    /// Mean goodput of the TCP clients (0 when none).
    pub tcp_mean_mbps: f64,
    /// `mptcp_mean / tcp_mean`, 0 when either side is absent.
    pub mptcp_tcp_ratio: f64,
    /// Jain's fairness index over per-client goodput.
    pub jain_index: f64,
}

/// Reduce per-client goodput into the report's fairness block in one
/// fixed-order pass. `is_mptcp(i)` classifies client `i`; the folds run
/// in ascending `i`, so the result is a pure function of the slice —
/// independent of shard count, worker schedule, or any other execution
/// detail.
pub fn fairness_stats(per_client_mbps: &[f64], is_mptcp: impl Fn(usize) -> bool) -> FairnessStats {
    let mut sum = 0.0;
    let mut sq_sum = 0.0;
    let (mut m_sum, mut m_count) = (0.0, 0u64);
    let (mut t_sum, mut t_count) = (0.0, 0u64);
    for (i, &x) in per_client_mbps.iter().enumerate() {
        sum += x;
        sq_sum += x * x;
        if is_mptcp(i) {
            m_sum += x;
            m_count += 1;
        } else {
            t_sum += x;
            t_count += 1;
        }
    }
    let mean = |s: f64, n: u64| if n == 0 { 0.0 } else { s / n as f64 };
    let m_mean = mean(m_sum, m_count);
    let t_mean = mean(t_sum, t_count);
    FairnessStats {
        aggregate_mbps: sum,
        mptcp_mean_mbps: m_mean,
        tcp_mean_mbps: t_mean,
        mptcp_tcp_ratio: if t_mean > 0.0 && m_mean > 0.0 {
            m_mean / t_mean
        } else {
            0.0
        },
        jain_index: if sq_sum > 0.0 {
            sum * sum / (per_client_mbps.len() as f64 * sq_sum)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_naive_two_pass_formulas() {
        let xs = [4.0, 1.0, 3.0, 2.0, 5.0];
        let s = fairness_stats(&xs, |i| i % 2 == 0);
        let mptcp: Vec<f64> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, &x)| x)
            .collect();
        let tcp: Vec<f64> = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 != 0)
            .map(|(_, &x)| x)
            .collect();
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        assert_eq!(s.aggregate_mbps, sum);
        assert_eq!(
            s.mptcp_mean_mbps,
            mptcp.iter().sum::<f64>() / mptcp.len() as f64
        );
        assert_eq!(s.tcp_mean_mbps, tcp.iter().sum::<f64>() / tcp.len() as f64);
        assert_eq!(s.mptcp_tcp_ratio, s.mptcp_mean_mbps / s.tcp_mean_mbps);
        assert_eq!(s.jain_index, sum * sum / (xs.len() as f64 * sq));
    }

    #[test]
    fn degenerate_populations() {
        let all_zero = fairness_stats(&[0.0, 0.0], |_| false);
        assert_eq!(all_zero.jain_index, 0.0);
        assert_eq!(all_zero.mptcp_tcp_ratio, 0.0);
        let all_mptcp = fairness_stats(&[1.0, 3.0], |_| true);
        assert_eq!(all_mptcp.tcp_mean_mbps, 0.0);
        assert_eq!(all_mptcp.mptcp_tcp_ratio, 0.0);
        assert_eq!(fairness_stats(&[], |_| true).aggregate_mbps, 0.0);
    }

    #[test]
    fn mbps_scaling() {
        // 5 MB over 4 s = 10 Mbit/s.
        assert_eq!(mbps(5_000_000, 4.0), 10.0);
    }
}
