//! Topology graphs and static shortest-path routing.
//!
//! A topology is a directed graph of named nodes (hosts at the edge,
//! routers in the middle) whose edges are [`LinkConfig`]s — each direction
//! of a physical link is its own edge, so asymmetric access links (fat
//! downlink, thin uplink) fall out naturally.
//!
//! Routing is static and computed once at [`TopologyBuilder::build`]:
//! a BFS per destination (fewest hops; ties broken by smallest edge id,
//! which is insertion order) yields a full next-hop table. Deterministic
//! by construction — the same builder calls always produce the same
//! routes, independent of any hashing.

use emptcp_phy::LinkConfig;
use serde::Serialize;

/// A node in the topology graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub struct NodeId(pub u32);

/// What a node is; only routers forward traffic for others.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum NodeKind {
    /// An endpoint: sources and sinks traffic, never forwards.
    Host,
    /// A forwarding element with one output port per outgoing edge.
    Router,
}

/// One directed edge of the graph.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The link this edge's port is built from.
    pub config: LinkConfig,
}

#[derive(Clone, Debug)]
struct Node {
    name: String,
    kind: NodeKind,
}

/// Builder for a [`Topology`].
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    fn add_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
        });
        id
    }

    /// Add a host (endpoint) node.
    pub fn host(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a router node.
    pub fn router(&mut self, name: &str) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    /// Add a bidirectional link between `a` and `b`: the `a → b` direction
    /// uses `ab`, the reverse uses `ba`. Returns the directed edge ids
    /// `(a→b, b→a)` — these double as port ids in the fabric.
    pub fn link(&mut self, a: NodeId, b: NodeId, ab: LinkConfig, ba: LinkConfig) -> (usize, usize) {
        let fwd = self.edges.len();
        self.edges.push(Edge {
            from: a,
            to: b,
            config: ab,
        });
        self.edges.push(Edge {
            from: b,
            to: a,
            config: ba,
        });
        (fwd, fwd + 1)
    }

    /// Add a symmetric bidirectional link.
    pub fn symmetric_link(&mut self, a: NodeId, b: NodeId, config: LinkConfig) -> (usize, usize) {
        self.link(a, b, config, config)
    }

    /// Freeze the graph and compute the next-hop table.
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        // Outgoing edge ids per node, in insertion order (the tie-break).
        let mut out = vec![Vec::new(); n];
        for (eid, e) in self.edges.iter().enumerate() {
            out[e.from.0 as usize].push(eid);
        }
        // Incoming edges per node, for the reverse BFS from each dst.
        let mut inc = vec![Vec::new(); n];
        for (eid, e) in self.edges.iter().enumerate() {
            inc[e.to.0 as usize].push(eid);
        }
        // next_hop[node][dst] = outgoing edge id toward dst.
        let mut next_hop = vec![vec![None; n]; n];
        let mut dist = vec![u32::MAX; n];
        let mut frontier = std::collections::VecDeque::new();
        for dst in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[dst] = 0;
            frontier.clear();
            frontier.push_back(dst);
            while let Some(v) = frontier.pop_front() {
                // Only routers relay; hosts terminate paths (except the
                // destination itself, which may be a host).
                if v != dst && self.nodes[v].kind == NodeKind::Host {
                    continue;
                }
                for &eid in &inc[v] {
                    let u = self.edges[eid].from.0 as usize;
                    if dist[u] == u32::MAX {
                        dist[u] = dist[v] + 1;
                        next_hop[u][dst] = Some(eid);
                        frontier.push_back(u);
                    } else if dist[u] == dist[v] + 1 {
                        // Equal-cost tie: keep the smallest edge id so the
                        // route is a pure function of insertion order.
                        if let Some(cur) = next_hop[u][dst] {
                            if eid < cur {
                                next_hop[u][dst] = Some(eid);
                            }
                        }
                    }
                }
            }
        }
        Topology {
            nodes: self.nodes,
            edges: self.edges,
            next_hop,
        }
    }
}

/// A frozen topology: the graph plus its static next-hop table.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    next_hop: Vec<Vec<Option<usize>>>,
}

impl Topology {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges (= ports in the fabric).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// A node's display name.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id.0 as usize].name
    }

    /// A node's kind.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0 as usize].kind
    }

    /// The directed edge behind a port id.
    pub fn edge(&self, id: usize) -> &Edge {
        &self.edges[id]
    }

    /// The outgoing edge `at` uses toward `dst`, or `None` when `dst` is
    /// unreachable (or `at == dst`).
    pub fn route(&self, at: NodeId, dst: NodeId) -> Option<usize> {
        self.next_hop[at.0 as usize][dst.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimDuration;

    fn cfg() -> LinkConfig {
        LinkConfig::backbone(SimDuration::from_millis(1))
    }

    /// host A — router R0 — router R1 — host B, plus a spur host C on R0.
    fn line() -> (Topology, [NodeId; 5]) {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r0 = b.router("r0");
        let r1 = b.router("r1");
        let bb = b.host("b");
        let c = b.host("c");
        b.symmetric_link(a, r0, cfg());
        b.symmetric_link(r0, r1, cfg());
        b.symmetric_link(r1, bb, cfg());
        b.symmetric_link(r0, c, cfg());
        (b.build(), [a, r0, r1, bb, c])
    }

    #[test]
    fn routes_follow_the_line() {
        let (t, [a, r0, r1, bb, c]) = line();
        // a → b crosses a→r0, r0→r1, r1→b.
        let e0 = t.route(a, bb).unwrap();
        assert_eq!(t.edge(e0).to, r0);
        let e1 = t.route(r0, bb).unwrap();
        assert_eq!(t.edge(e1).to, r1);
        let e2 = t.route(r1, bb).unwrap();
        assert_eq!(t.edge(e2).to, bb);
        // Spur: b → c goes back through both routers.
        let e = t.route(bb, c).unwrap();
        assert_eq!(t.edge(e).to, r1);
        assert_eq!(t.route(c, c), None);
    }

    #[test]
    fn hosts_do_not_relay() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let mid = b.host("mid"); // a host in the middle must not forward
        let z = b.host("z");
        b.symmetric_link(a, mid, cfg());
        b.symmetric_link(mid, z, cfg());
        let t = b.build();
        assert_eq!(t.route(a, z), None, "host relayed traffic");
        assert!(t.route(a, mid).is_some());
    }

    #[test]
    fn equal_cost_ties_break_by_edge_insertion_order() {
        // Two parallel routers between a and z; the first-inserted path
        // must win deterministically.
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let r0 = b.router("r0");
        let r1 = b.router("r1");
        let z = b.host("z");
        let (a_r0, _) = b.symmetric_link(a, r0, cfg());
        b.symmetric_link(a, r1, cfg());
        b.symmetric_link(r0, z, cfg());
        b.symmetric_link(r1, z, cfg());
        let t = b.build();
        assert_eq!(t.route(a, z), Some(a_r0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = TopologyBuilder::new();
        let a = b.host("a");
        let z = b.host("z");
        let t = b.build();
        assert_eq!(t.route(a, z), None);
    }
}
