//! Sharded fleet engine: conservative-lookahead epochs over flyweight
//! client rows.
//!
//! [`ShardedFleetSim`] runs the same star-shaped population as
//! [`FleetSim`](crate::fleet::FleetSim) — N mixed TCP/MPTCP client stacks
//! answered by per-client server endpoints through one shared core
//! bottleneck, with optional cross-traffic and core fault injection — but
//! partitions the fleet so it scales to a million clients:
//!
//! * **Shards.** Clients are split into contiguous blocks. Each shard owns
//!   its own [`EventQueue`] timing wheel, [`SegmentSlab`], telemetry
//!   pipeline and per-client RNG streams; a dedicated *core* shard owns the
//!   shared bottleneck port, the reverse (ack) core port, the cross-traffic
//!   sources and the fault injector. No state is shared between shards
//!   inside an epoch, so shards execute on independent workers.
//!
//! * **Conservative lookahead.** Every packet crossing a shard boundary
//!   traverses a link whose propagation delay is at least Δ — the minimum
//!   over the server backbone, the access links in use and the core
//!   bottleneck ([`lookahead`] computes it; construction fails with
//!   [`FleetConfigError::NoLookahead`] when it is zero). Shards therefore
//!   advance in epochs of length Δ ([`EpochClock`]): a message generated at
//!   time `t` inside epoch `k` arrives at `t + Δ ≥ (k+1)·Δ`, i.e. at or
//!   after the barrier every shard synchronizes on, so no shard ever sees
//!   an event from its past. Cross-shard segments ride outboxes drained at
//!   the barrier.
//!
//! * **Canonical event keys.** Determinism across `(jobs, shards)` hinges
//!   on same-instant ordering being a pure function of the *simulation*,
//!   not the partition. Every scheduled event carries a caller-assigned
//!   key `(class, owner, seq)` — owner 0 is the core, owner `i + 1` is
//!   client `i`, `seq` counts that owner's schedules — installed with
//!   [`EventQueue::schedule_keyed`]. An owner's schedule sequence depends
//!   only on its own history, so the key of every event is identical for
//!   every shard count, and so is the pop order. There is **no** special
//!   single-shard code path: `shards == 1` runs the identical epoch and
//!   barrier machinery, which is what makes it the differential reference.
//!
//! * **Flyweight rows.** Per-client hot state lives in struct-of-arrays
//!   columns ([`Rows`]): connection endpoints, the six per-client ports,
//!   armed-timer slots, key counters and RNG streams are parallel vectors
//!   indexed by the client's local row. There is no topology graph, no
//!   routing table and no per-client name strings — the star's next hop is
//!   closed-form — which is what drops per-client footprint enough for
//!   `--clients 1000000` to complete.
//!
//! Traces stay byte-identical across shard counts: each shard's pipeline
//! tags every record with the key of the driving event, and the records
//! are merged into the outer pipeline at end of run by a stable sort on
//! `(time, key)`. Per-shard pipelines run with invariant checking off; the
//! engine's aggregate invariant (segment-slab balance) is checked on the
//! outer pipeline, and chaos certification continues to ride the unsharded
//! engine.

use crate::fleet::{FleetConfig, FleetConfigError, FleetReport, CLIENT_REQUEST_BYTES};
use crate::port::{Port, PortOutcome};
use crate::reduce;
use crate::topology::NodeId;
use emptcp_faults::injector::{FaultInjector, FaultSurface};
use emptcp_faults::{FaultPlan, FaultTarget};
use emptcp_mptcp::{MpConnection, Role, SubflowId};
use emptcp_phy::modulation::OnOff;
use emptcp_phy::{IfaceKind, LinkConfig, LossModel};
use emptcp_sim::{EpochClock, EventQueue, SimDuration, SimRng, SimTime, TimerId};
use emptcp_tcp::{CcAlgorithm, SegRef, SegSlabStats, Segment, SegmentSlab, TcpConfig};
use emptcp_telemetry::{shard_metric, Telemetry, TelemetryScope, TraceEvent, TraceSink};
use emptcp_workload::CrossTrafficSource;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Canonical event keys
// ---------------------------------------------------------------------

/// Fault-injector polls: applied before any same-instant packet event.
const CLASS_FAULT: u64 = 0;
/// Build-time and initial-drain trace tags (never queue keys).
const CLASS_INIT: u64 = 1;
/// Ordinary scheduled events.
const CLASS_EVENT: u64 = 2;
/// End-of-run finalization trace tags (never queue keys).
const CLASS_FINAL: u64 = 3;

/// The core shard's owner id; client `i` is owner `i + 1`.
const CORE_OWNER: u32 = 0;

/// Pack `(class, owner, seq)` into the canonical 64-bit ordering key:
/// 2 bits of class, 30 bits of owner, 32 bits of per-owner sequence.
fn pack(class: u64, owner: u32, seq: u32) -> u64 {
    debug_assert!(owner < (1 << 30));
    class << 62 | (owner as u64) << 32 | seq as u64
}

// Stable per-client port labels for trace events and metrics.
const P_SRV_EGRESS: u32 = 0;
const P_SRV_INGRESS: u32 = 1;
const P_DOWN_A: u32 = 2;
const P_UP_A: u32 = 3;
const P_DOWN_B: u32 = 4;
const P_UP_B: u32 = 5;
// Core shard port labels (router 0).
const P_BOTTLENECK: u32 = 0;
const P_REVERSE: u32 = 1;
const P_CROSS_SINK: u32 = 2;

/// The conservative lookahead bound Δ for a fleet config: the minimum
/// propagation delay over every link a cross-shard packet can traverse as
/// its boundary hop — the 1 ms server backbone, the access links in use,
/// and the core bottleneck (whose delay bounds both core-egress
/// directions). Fault actions can only *add* delay
/// ([`Port::set_extra_delay`]) or drop packets, never shorten propagation,
/// so the bound holds under any fault plan.
pub fn lookahead(cfg: &FleetConfig) -> SimDuration {
    let mut d = SERVER_LINK_PROP.min(cfg.bottleneck.prop_delay);
    d = d.min(cfg.access_a.prop_delay);
    if cfg.mptcp_every != 0 {
        d = d.min(cfg.access_b.prop_delay);
    }
    d
}

/// Server-side backbone propagation (mirrors the unsharded harness).
const SERVER_LINK_PROP: SimDuration = SimDuration::from_millis(1);

// ---------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------

/// Runs the per-epoch shard closures. Implementations only promise that
/// every index in `0..n` is invoked exactly once before returning; order
/// and parallelism are theirs to choose — the engine's output is
/// byte-identical either way.
pub trait ShardExecutor: Sync {
    /// Invoke `f(i)` for every `i` in `0..n`.
    fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync));
}

/// The trivial executor: runs every shard on the calling thread.
pub struct SerialExecutor;

impl ShardExecutor for SerialExecutor {
    fn run_indexed(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            f(i);
        }
    }
}

// ---------------------------------------------------------------------
// Trace taps
// ---------------------------------------------------------------------

/// Per-shard trace sink: records every event with the key of the driving
/// event, so the end-of-run merge can re-serialize all shards' records
/// into one deterministic `(time, key)` order.
#[derive(Default)]
struct ShardTap {
    tag: u64,
    records: Vec<(SimTime, u64, TraceEvent)>,
}

impl TraceSink for ShardTap {
    fn record(&mut self, t: SimTime, event: &TraceEvent) {
        self.records.push((t, self.tag, event.clone()));
    }
}

type Tap = Arc<Mutex<ShardTap>>;

fn make_pipeline(outer: &Telemetry) -> (Telemetry, Option<Tap>) {
    if !outer.enabled() {
        return (Telemetry::disabled(), None);
    }
    if outer.tracing_active() {
        let tap: Tap = Arc::new(Mutex::new(ShardTap::default()));
        let tel = Telemetry::builder().sink(Box::new(tap.clone())).build();
        (tel, Some(tap))
    } else {
        (Telemetry::builder().build(), None)
    }
}

// ---------------------------------------------------------------------
// Client shards
// ---------------------------------------------------------------------

/// Struct-of-arrays client rows: every per-client column is a parallel
/// vector indexed by the client's local row in its shard. MPTCP rows
/// additionally reference a `(down_b, up_b)` port pair in the shard's
/// arena — one contiguous allocation for all second-path pairs instead of
/// one heap box per MPTCP row, which at fleet scale removes millions of
/// small allocations and keeps the pairs cache-adjacent in shard order.
struct Rows {
    client: Vec<MpConnection>,
    server: Vec<MpConnection>,
    srv_egress: Vec<Port>,
    srv_ingress: Vec<Port>,
    down_a: Vec<Port>,
    up_a: Vec<Port>,
    /// Index into `b_arena` for MPTCP rows, `None` for plain-TCP rows.
    b_idx: Vec<Option<u32>>,
    /// Arena of second-path port pairs, in row order.
    b_arena: Vec<(Port, Port)>,
    answered: Vec<bool>,
    timer: Vec<Option<(SimTime, TimerId)>>,
    seq: Vec<u32>,
    rng: Vec<SimRng>,
}

/// Events local to a client shard. Segment-bearing events park their
/// payload in the shard's slab; whoever consumes the event must `take` it
/// back exactly once.
enum ClientEvent {
    /// A data segment leaving the core toward this client: charge the
    /// access downlink of subflow `sf`.
    DownFromCore {
        local: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// An ack/request leaving the core toward this client's server:
    /// charge the server ingress link.
    UpFromCore {
        local: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// Access-downlink delivery at the NIC.
    DeliverClient {
        local: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// Server-ingress delivery at the server endpoint.
    DeliverServer {
        local: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// Per-client re-armed deadline sweep.
    Timer { local: u32 },
}

/// A packet bound for the core, generated inside an epoch and delivered
/// at the next barrier. The segment crosses by value; `key` was assigned
/// by the sending client's counter, so it is unique and shard-invariant.
struct CoreMsg {
    client: u32,
    sf: SubflowId,
    at: SimTime,
    key: u64,
    seg: Segment,
    /// True for server→client data (bottleneck direction), false for
    /// client→server acks (reverse core direction).
    down: bool,
}

/// A packet bound for a client shard, generated by the core.
struct ClientMsg {
    client: u32,
    sf: SubflowId,
    at: SimTime,
    key: u64,
    seg: Segment,
    down: bool,
}

struct ClientShard {
    /// Global id of local row 0.
    base: u32,
    rows: Rows,
    queue: EventQueue<(u64, ClientEvent)>,
    slab: SegmentSlab,
    outbox: Vec<CoreMsg>,
    telemetry: Telemetry,
    port_scope: TelemetryScope,
    tap: Option<Tap>,
    events: u64,
}

impl ClientShard {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &FleetConfig,
        base: usize,
        count: usize,
        outer: &Telemetry,
        client_rng: &SimRng,
    ) -> ClientShard {
        let (telemetry, tap) = make_pipeline(outer);
        let now = SimTime::ZERO;
        let mut rows = Rows {
            client: Vec::with_capacity(count),
            server: Vec::with_capacity(count),
            srv_egress: Vec::with_capacity(count),
            srv_ingress: Vec::with_capacity(count),
            down_a: Vec::with_capacity(count),
            up_a: Vec::with_capacity(count),
            b_idx: Vec::with_capacity(count),
            b_arena: Vec::new(),
            answered: vec![false; count],
            timer: vec![None; count],
            seq: vec![0; count],
            rng: Vec::with_capacity(count),
        };
        let mut mp_tcfg = TcpConfig::default();
        if cfg.coupled {
            mp_tcfg.algorithm = CcAlgorithm::Lia;
        }
        let backbone = LinkConfig::backbone(SERVER_LINK_PROP);
        for local in 0..count {
            let i = base + local;
            let owner = i as u32 + 1;
            if let Some(tap) = &tap {
                tap.lock().expect("tap poisoned").tag = pack(CLASS_INIT, owner, 0);
            }
            let mptcp = cfg.mptcp_every != 0 && i.is_multiple_of(cfg.mptcp_every);
            let tcfg = if mptcp { mp_tcfg } else { TcpConfig::default() };
            let mut client = MpConnection::new(Role::Client, tcfg);
            let mut server = MpConnection::new(Role::Server, tcfg);
            client.set_telemetry(telemetry.scope(i as u32));
            server.set_telemetry(telemetry.scope(i as u32));
            client.set_coupled(cfg.coupled);
            server.set_coupled(cfg.coupled);
            client.add_subflow(now, IfaceKind::Wifi);
            server.add_subflow(now, IfaceKind::Wifi);
            if mptcp {
                client.add_subflow(now, IfaceKind::CellularLte);
                server.add_subflow(now, IfaceKind::CellularLte);
            }
            client.write(CLIENT_REQUEST_BYTES);
            rows.client.push(client);
            rows.server.push(server);
            // Dummy node ids: the star's routing is closed-form, so port
            // endpoints are labels only (trace/metric ids are explicit).
            rows.srv_egress
                .push(Port::new(NodeId(owner), NodeId(0), backbone));
            rows.srv_ingress
                .push(Port::new(NodeId(0), NodeId(owner), backbone));
            rows.down_a
                .push(Port::new(NodeId(1), NodeId(owner), cfg.access_a));
            rows.up_a
                .push(Port::new(NodeId(owner), NodeId(1), cfg.access_a));
            let b_idx = mptcp.then(|| {
                rows.b_arena.push((
                    Port::new(NodeId(1), NodeId(owner), cfg.access_b),
                    Port::new(NodeId(owner), NodeId(1), cfg.access_b),
                ));
                (rows.b_arena.len() - 1) as u32
            });
            rows.b_idx.push(b_idx);
            let mut forked = client_rng.clone();
            rows.rng.push(forked.fork(i as u64));
        }
        let port_scope = telemetry.scope(u32::MAX);
        ClientShard {
            base: base as u32,
            rows,
            queue: EventQueue::new(),
            slab: SegmentSlab::new(),
            outbox: Vec::new(),
            telemetry,
            port_scope,
            tap,
            events: 0,
        }
    }

    fn owner(&self, local: usize) -> u32 {
        self.base + local as u32 + 1
    }

    fn next_key(&mut self, local: usize, class: u64) -> u64 {
        let seq = self.rows.seq[local];
        self.rows.seq[local] += 1;
        pack(class, self.owner(local), seq)
    }

    fn set_tag(&self, tag: u64) {
        if let Some(tap) = &self.tap {
            tap.lock().expect("tap poisoned").tag = tag;
        }
    }

    /// Initial drain at time zero: launch the handshakes/requests and arm
    /// the first per-client timers.
    fn init(&mut self) {
        for local in 0..self.rows.client.len() {
            self.set_tag(pack(CLASS_INIT, self.owner(local), 1));
            self.touch(SimTime::ZERO, local);
        }
    }

    /// Process every queued event strictly before `bound`.
    fn run_until(&mut self, bound: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= bound {
                break;
            }
            let (now, (key, event)) = self.queue.pop().expect("peeked event vanished");
            self.events += 1;
            self.set_tag(key);
            self.handle(now, event);
        }
    }

    fn handle(&mut self, now: SimTime, event: ClientEvent) {
        match event {
            ClientEvent::DownFromCore { local, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                self.charge_access(now, local as usize, sf, seg, true);
            }
            ClientEvent::UpFromCore { local, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                let l = local as usize;
                let wire = seg.wire_bytes();
                let owner = self.owner(l);
                let outcome = self.rows.srv_ingress[l].transmit(
                    now,
                    wire,
                    &mut self.rows.rng[l],
                    owner,
                    P_SRV_INGRESS,
                    &self.port_scope,
                );
                if let PortOutcome::Forwarded { at, .. } = outcome {
                    let key = self.next_key(l, CLASS_EVENT);
                    let seg = self.slab.insert(seg);
                    self.queue.schedule_keyed(
                        at,
                        key,
                        (key, ClientEvent::DeliverServer { local, sf, seg }),
                    );
                }
            }
            ClientEvent::DeliverClient { local, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                let l = local as usize;
                self.rows.client[l].on_segment(now, sf, seg);
                self.touch(now, l);
            }
            ClientEvent::DeliverServer { local, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                let l = local as usize;
                self.rows.server[l].on_segment(now, sf, seg);
                self.feed_server(l);
                self.touch(now, l);
            }
            ClientEvent::Timer { local } => {
                let l = local as usize;
                self.rows.timer[l] = None;
                self.rows.client[l].on_deadline(now);
                self.rows.server[l].on_deadline(now);
                self.touch(now, l);
            }
        }
    }

    /// Charge one access link (downlink when `down`, uplink otherwise).
    /// Downlink forwards schedule the local NIC delivery; uplink forwards
    /// emit a core-bound message.
    fn charge_access(&mut self, now: SimTime, l: usize, sf: SubflowId, seg: Segment, down: bool) {
        let wire = seg.wire_bytes();
        let owner = self.owner(l);
        let (port, label) = match (sf.0, down) {
            (0, true) => (&mut self.rows.down_a[l], P_DOWN_A),
            (0, false) => (&mut self.rows.up_a[l], P_UP_A),
            (_, down) => {
                let idx = self.rows.b_idx[l].expect("subflow b on a TCP row") as usize;
                let pair = &mut self.rows.b_arena[idx];
                if down {
                    (&mut pair.0, P_DOWN_B)
                } else {
                    (&mut pair.1, P_UP_B)
                }
            }
        };
        let outcome = port.transmit(
            now,
            wire,
            &mut self.rows.rng[l],
            owner,
            label,
            &self.port_scope,
        );
        let PortOutcome::Forwarded { at, .. } = outcome else {
            return;
        };
        let key = self.next_key(l, CLASS_EVENT);
        if down {
            let seg = self.slab.insert(seg);
            let local = l as u32;
            self.queue.schedule_keyed(
                at,
                key,
                (key, ClientEvent::DeliverClient { local, sf, seg }),
            );
        } else {
            self.outbox.push(CoreMsg {
                client: self.base + l as u32,
                sf,
                at,
                key,
                seg,
                down: false,
            });
        }
    }

    /// Launch a server→client segment onto the server egress backbone.
    fn launch_down(&mut self, now: SimTime, l: usize, sf: SubflowId, seg: Segment) {
        let wire = seg.wire_bytes();
        let owner = self.owner(l);
        let outcome = self.rows.srv_egress[l].transmit(
            now,
            wire,
            &mut self.rows.rng[l],
            owner,
            P_SRV_EGRESS,
            &self.port_scope,
        );
        if let PortOutcome::Forwarded { at, .. } = outcome {
            let key = self.next_key(l, CLASS_EVENT);
            self.outbox.push(CoreMsg {
                client: self.base + l as u32,
                sf,
                at,
                key,
                seg,
                down: true,
            });
        }
    }

    /// Timed bulk: the first complete request unlocks a response far
    /// larger than any horizon can drain.
    fn feed_server(&mut self, l: usize) {
        if !self.rows.answered[l] && self.rows.server[l].bytes_delivered() >= CLIENT_REQUEST_BYTES {
            self.rows.answered[l] = true;
            self.rows.server[l].write(1 << 42);
        }
    }

    /// Drain both endpoints of row `l` and re-arm its timer.
    fn touch(&mut self, now: SimTime, l: usize) {
        while let Some((sf, seg)) = self.rows.client[l].poll_transmit(now) {
            self.charge_access(now, l, sf, seg, false);
        }
        while let Some((sf, seg)) = self.rows.server[l].poll_transmit(now) {
            self.launch_down(now, l, sf, seg);
        }
        self.rearm(now, l);
    }

    /// Re-arm row `l`'s timer at the earlier of its endpoints' deadlines.
    /// Like the unsharded harness, the armed time only moves *earlier*
    /// between fires; a deadline moving later leaves the timer to fire
    /// spuriously (the sweep is a no-op then).
    fn rearm(&mut self, now: SimTime, l: usize) {
        let next = match (
            self.rows.client[l].next_deadline(),
            self.rows.server[l].next_deadline(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(d) = next else { return };
        let d = d.max(now);
        let need = match self.rows.timer[l] {
            Some((t, _)) => d < t,
            None => true,
        };
        if need {
            if let Some((_, id)) = self.rows.timer[l].take() {
                self.queue.cancel(id);
            }
            let key = self.next_key(l, CLASS_EVENT);
            let local = l as u32;
            let id = self
                .queue
                .schedule_keyed(d, key, (key, ClientEvent::Timer { local }));
            self.rows.timer[l] = Some((d, id));
        }
    }

    /// Reclaim queued segments, flush delivered-trace residue and publish
    /// the shard's aggregate metrics.
    fn finalize(&mut self, sid: usize, horizon: SimTime) -> SegSlabStats {
        while let Some((_, (_, event))) = self.queue.pop() {
            match event {
                ClientEvent::DownFromCore { seg, .. }
                | ClientEvent::UpFromCore { seg, .. }
                | ClientEvent::DeliverClient { seg, .. }
                | ClientEvent::DeliverServer { seg, .. } => {
                    self.slab
                        .take(seg)
                        .expect("queued event holds a parked segment");
                }
                ClientEvent::Timer { .. } => {}
            }
        }
        for l in 0..self.rows.client.len() {
            self.set_tag(pack(CLASS_FINAL, self.owner(l), 0));
            self.rows.client[l].flush_delivered_trace(horizon);
            self.rows.server[l].flush_delivered_trace(horizon);
        }
        let (mut delivered, mut drops_q, mut drops_c, mut marks) = (0, 0, 0, 0);
        self.for_each_port(|p| {
            delivered += p.link().delivered_packets();
            drops_q += p.link().dropped_queue();
            drops_c += p.link().dropped_channel();
            marks += p.ecn_marked();
        });
        let events = self.events;
        self.telemetry.with_metrics(|m| {
            m.counter_add(&shard_metric(sid as u32, "events"), events);
            m.counter_add(&shard_metric(sid as u32, "delivered"), delivered);
            m.counter_add(&shard_metric(sid as u32, "drops_queue"), drops_q);
            m.counter_add(&shard_metric(sid as u32, "drops_channel"), drops_c);
            m.counter_add(&shard_metric(sid as u32, "ecn_marked"), marks);
        });
        self.slab.stats()
    }

    fn for_each_port(&self, mut f: impl FnMut(&Port)) {
        for l in 0..self.rows.client.len() {
            f(&self.rows.srv_egress[l]);
            f(&self.rows.srv_ingress[l]);
            f(&self.rows.down_a[l]);
            f(&self.rows.up_a[l]);
            if let Some(idx) = self.rows.b_idx[l] {
                let pair = &self.rows.b_arena[idx as usize];
                f(&pair.0);
                f(&pair.1);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The core shard
// ---------------------------------------------------------------------

/// The three core-owned ports. Implements the fault surface: like the
/// unsharded fabric, `FaultTarget::Core` is designated onto the shared
/// bottleneck; the access-path targets have no designated ports here.
struct CorePorts {
    bottleneck: Port,
    reverse: Port,
    cross_sink: Port,
}

impl FaultSurface for CorePorts {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        if target == FaultTarget::Core {
            self.bottleneck.set_admin_up(now, up);
        }
    }
    fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        if target == FaultTarget::Core {
            self.bottleneck.set_rate(now, rate_bps);
        }
    }
    fn set_loss(&mut self, _now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        if target == FaultTarget::Core {
            self.bottleneck.set_loss(model);
        }
    }
    fn set_extra_delay(&mut self, _now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        if target == FaultTarget::Core {
            self.bottleneck.set_extra_delay(extra);
        }
    }
}

enum CoreEvent {
    /// Server→client segment arriving at the core: charge the bottleneck.
    DownAtCore {
        client: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// Client→server segment arriving at the core: charge the reverse port.
    UpAtCore {
        client: u32,
        sf: SubflowId,
        seg: SegRef,
    },
    /// A cross source is due to emit (or toggle).
    CrossPoll { src: u32 },
    /// A cross packet cleared the bottleneck: charge the sink backbone.
    CrossAtOut { src: u32 },
    /// A cross packet reached the sink (absorbed).
    CrossAtSink,
    /// The fault injector has an event due now.
    FaultPoll,
}

struct CoreShard {
    queue: EventQueue<(u64, CoreEvent)>,
    slab: SegmentSlab,
    ports: CorePorts,
    cross: Vec<CrossTrafficSource>,
    cross_packets: u64,
    injector: Option<FaultInjector>,
    faults_applied: u64,
    rng: SimRng,
    seq: u32,
    outbox: Vec<ClientMsg>,
    telemetry: Telemetry,
    port_scope: TelemetryScope,
    tap: Option<Tap>,
    events: u64,
}

impl CoreShard {
    fn new(cfg: &FleetConfig, outer: &Telemetry, root: &SimRng) -> CoreShard {
        let (telemetry, tap) = make_pipeline(outer);
        let now = SimTime::ZERO;
        let mut cross_rng = root.fork_labeled("cross");
        let cross = (0..cfg.cross_sources)
            .map(|i| {
                CrossTrafficSource::new(
                    now,
                    if i % 2 == 0 { OnOff::On } else { OnOff::Off },
                    cfg.cross_rate_bps,
                    1500,
                    0.5,
                    0.5,
                    cross_rng.fork(i as u64),
                )
            })
            .collect();
        let backbone = LinkConfig::backbone(SERVER_LINK_PROP);
        let port_scope = telemetry.scope(u32::MAX);
        CoreShard {
            queue: EventQueue::new(),
            slab: SegmentSlab::new(),
            ports: CorePorts {
                bottleneck: Port::new(NodeId(0), NodeId(1), cfg.bottleneck),
                reverse: Port::new(
                    NodeId(1),
                    NodeId(0),
                    LinkConfig::backbone(cfg.bottleneck.prop_delay),
                ),
                cross_sink: Port::new(NodeId(1), NodeId(2), backbone),
            },
            cross,
            cross_packets: 0,
            injector: None,
            faults_applied: 0,
            rng: root.fork_labeled("net"),
            seq: 0,
            outbox: Vec::new(),
            telemetry,
            port_scope,
            tap,
            events: 0,
        }
    }

    fn next_key(&mut self, class: u64) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        pack(class, CORE_OWNER, seq)
    }

    fn set_tag(&self, tag: u64) {
        if let Some(tap) = &self.tap {
            tap.lock().expect("tap poisoned").tag = tag;
        }
    }

    /// Apply faults due at time zero and schedule the first fault poll
    /// and the cross sources' first wake-ups.
    fn init(&mut self) {
        self.set_tag(pack(CLASS_INIT, CORE_OWNER, 0));
        self.poll_faults(SimTime::ZERO);
        for src in 0..self.cross.len() {
            let at = self.cross[src].next_event();
            let key = self.next_key(CLASS_EVENT);
            let src = src as u32;
            self.queue
                .schedule_keyed(at, key, (key, CoreEvent::CrossPoll { src }));
        }
    }

    /// Apply every fault due at `now` and schedule the next poll exactly
    /// at the injector's next deadline (class 0, so it sorts before any
    /// same-instant packet event).
    fn poll_faults(&mut self, now: SimTime) {
        let Some(mut inj) = self.injector.take() else {
            return;
        };
        self.faults_applied += inj.poll(now, &mut self.ports) as u64;
        if let Some(d) = inj.next_deadline() {
            let key = self.next_key(CLASS_FAULT);
            self.queue
                .schedule_keyed(d, key, (key, CoreEvent::FaultPoll));
        }
        self.injector = Some(inj);
    }

    fn run_until(&mut self, bound: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= bound {
                break;
            }
            let (now, (key, event)) = self.queue.pop().expect("peeked event vanished");
            self.events += 1;
            self.set_tag(key);
            self.handle(now, event);
        }
    }

    fn handle(&mut self, now: SimTime, event: CoreEvent) {
        match event {
            CoreEvent::DownAtCore { client, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                let outcome = self.ports.bottleneck.transmit(
                    now,
                    seg.wire_bytes(),
                    &mut self.rng,
                    0,
                    P_BOTTLENECK,
                    &self.port_scope,
                );
                // The ECN mark is accounting-only at the port (the
                // transports are loss-based), same as the unsharded path.
                if let PortOutcome::Forwarded { at, .. } = outcome {
                    let key = self.next_key(CLASS_EVENT);
                    self.outbox.push(ClientMsg {
                        client,
                        sf,
                        at,
                        key,
                        seg,
                        down: true,
                    });
                }
            }
            CoreEvent::UpAtCore { client, sf, seg } => {
                let seg = self.slab.take(seg).expect("parked segment");
                let outcome = self.ports.reverse.transmit(
                    now,
                    seg.wire_bytes(),
                    &mut self.rng,
                    0,
                    P_REVERSE,
                    &self.port_scope,
                );
                if let PortOutcome::Forwarded { at, .. } = outcome {
                    let key = self.next_key(CLASS_EVENT);
                    self.outbox.push(ClientMsg {
                        client,
                        sf,
                        at,
                        key,
                        seg,
                        down: false,
                    });
                }
            }
            CoreEvent::CrossPoll { src } => {
                let i = src as usize;
                let packets = self.cross[i].poll(now);
                let bytes = self.cross[i].packet_bytes();
                for _ in 0..packets {
                    self.cross_packets += 1;
                    let outcome = self.ports.bottleneck.transmit(
                        now,
                        bytes,
                        &mut self.rng,
                        0,
                        P_BOTTLENECK,
                        &self.port_scope,
                    );
                    if let PortOutcome::Forwarded { at, .. } = outcome {
                        let key = self.next_key(CLASS_EVENT);
                        self.queue
                            .schedule_keyed(at, key, (key, CoreEvent::CrossAtOut { src }));
                    }
                }
                let at = self.cross[i].next_event();
                let key = self.next_key(CLASS_EVENT);
                self.queue
                    .schedule_keyed(at, key, (key, CoreEvent::CrossPoll { src }));
            }
            CoreEvent::CrossAtOut { src } => {
                let bytes = self.cross[src as usize].packet_bytes();
                let outcome = self.ports.cross_sink.transmit(
                    now,
                    bytes,
                    &mut self.rng,
                    0,
                    P_CROSS_SINK,
                    &self.port_scope,
                );
                if let PortOutcome::Forwarded { at, .. } = outcome {
                    let key = self.next_key(CLASS_EVENT);
                    self.queue
                        .schedule_keyed(at, key, (key, CoreEvent::CrossAtSink));
                }
            }
            CoreEvent::CrossAtSink => {}
            CoreEvent::FaultPoll => self.poll_faults(now),
        }
    }

    /// Reclaim queued segments and publish the core's port metrics, keyed
    /// the same way the unsharded fabric publishes (router 0 = the core).
    fn finalize(&mut self) -> SegSlabStats {
        while let Some((_, (_, event))) = self.queue.pop() {
            match event {
                CoreEvent::DownAtCore { seg, .. } | CoreEvent::UpAtCore { seg, .. } => {
                    self.slab
                        .take(seg)
                        .expect("queued event holds a parked segment");
                }
                _ => {}
            }
        }
        use emptcp_telemetry::router_port_metric;
        let ports = [
            (P_BOTTLENECK, &self.ports.bottleneck),
            (P_REVERSE, &self.ports.reverse),
            (P_CROSS_SINK, &self.ports.cross_sink),
        ];
        self.telemetry.with_metrics(|m| {
            for (pid, port) in ports {
                let link = port.link();
                m.counter_add(
                    &router_port_metric(0, pid, "delivered"),
                    link.delivered_packets(),
                );
                m.counter_add(
                    &router_port_metric(0, pid, "drops_queue"),
                    link.dropped_queue(),
                );
                m.counter_add(
                    &router_port_metric(0, pid, "drops_channel"),
                    link.dropped_channel(),
                );
                m.counter_add(&router_port_metric(0, pid, "ecn_marked"), port.ecn_marked());
                m.gauge_set(
                    &router_port_metric(0, pid, "peak_queue_bytes"),
                    port.peak_queue_bytes() as f64,
                );
            }
        });
        self.slab.stats()
    }

    fn for_each_port(&self, mut f: impl FnMut(&Port)) {
        f(&self.ports.bottleneck);
        f(&self.ports.reverse);
        f(&self.ports.cross_sink);
    }
}

// ---------------------------------------------------------------------
// The sharded fleet simulation
// ---------------------------------------------------------------------

/// A fleet simulation partitioned into conservative-lookahead shards.
///
/// Construction mirrors [`FleetSim`](crate::fleet::FleetSim) plus a shard
/// count; [`ShardedFleetSim::run`] executes serially and
/// [`ShardedFleetSim::run_with`] executes each epoch on a caller-supplied
/// [`ShardExecutor`]. The report, the trace stream and every metric are
/// byte-identical for every `(executor, shards)` combination.
pub struct ShardedFleetSim {
    cfg: FleetConfig,
    delta: SimDuration,
    shards: Vec<Mutex<ClientShard>>,
    core: Mutex<CoreShard>,
    /// Global client id of each shard's first row (ascending).
    starts: Vec<usize>,
    /// Reused barrier staging: core-outbox messages routed per shard.
    staging: Vec<Vec<ClientMsg>>,
    telemetry: Telemetry,
    per_client_buf: Vec<f64>,
}

impl ShardedFleetSim {
    /// Build a sharded fleet. Panics on an invalid configuration; use
    /// [`ShardedFleetSim::try_new_with_telemetry`] for the typed error.
    pub fn new(cfg: FleetConfig, shards: usize) -> ShardedFleetSim {
        ShardedFleetSim::new_with_telemetry(cfg, shards, Telemetry::disabled())
    }

    /// Build with an attached telemetry pipeline; panics on an invalid
    /// configuration.
    pub fn new_with_telemetry(
        cfg: FleetConfig,
        shards: usize,
        telemetry: Telemetry,
    ) -> ShardedFleetSim {
        match ShardedFleetSim::try_new_with_telemetry(cfg, shards, telemetry) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid fleet config: {e}"),
        }
    }

    /// Fallible construction. The shard count is clamped to
    /// `1..=cfg.clients`; a configuration whose minimum cross-shard link
    /// latency is zero is rejected with [`FleetConfigError::NoLookahead`].
    pub fn try_new_with_telemetry(
        cfg: FleetConfig,
        shards: usize,
        telemetry: Telemetry,
    ) -> Result<ShardedFleetSim, FleetConfigError> {
        cfg.validate()?;
        let delta = lookahead(&cfg);
        if delta == SimDuration::ZERO {
            return Err(FleetConfigError::NoLookahead);
        }
        assert!(
            cfg.clients + 1 < (1 << 30),
            "client count exceeds the 30-bit owner space"
        );
        let s = shards.clamp(1, cfg.clients);
        let root = SimRng::new(cfg.seed);
        let client_rng = root.fork_labeled("client_net");
        let starts: Vec<usize> = (0..s).map(|k| k * cfg.clients / s).collect();
        let shards: Vec<Mutex<ClientShard>> = (0..s)
            .map(|k| {
                let base = starts[k];
                let end = if k + 1 == s {
                    cfg.clients
                } else {
                    starts[k + 1]
                };
                Mutex::new(ClientShard::new(
                    &cfg,
                    base,
                    end - base,
                    &telemetry,
                    &client_rng,
                ))
            })
            .collect();
        let core = Mutex::new(CoreShard::new(&cfg, &telemetry, &root));
        let staging = (0..s).map(|_| Vec::new()).collect();
        let per_client_buf = Vec::with_capacity(cfg.clients);
        Ok(ShardedFleetSim {
            cfg,
            delta,
            shards,
            core,
            starts,
            staging,
            telemetry,
            per_client_buf,
        })
    }

    /// Attach a fault plan; `FaultTarget::Core` hits the bottleneck port.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        let mut core = self.core.lock().expect("core shard poisoned");
        let mut injector = FaultInjector::new(plan);
        injector.set_telemetry(core.telemetry.scope(u32::MAX));
        core.injector = Some(injector);
    }

    /// The number of client shards (after clamping).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead bound Δ in force for this run.
    pub fn delta(&self) -> SimDuration {
        self.delta
    }

    /// Raw per-client delivered byte counts in ascending client order —
    /// the quantity the differential harness pins across shard counts.
    pub fn per_client_delivered(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.cfg.clients);
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for conn in &shard.rows.client {
                out.push(conn.bytes_delivered());
            }
        }
        out
    }

    /// Run serially on the calling thread.
    pub fn run(&mut self) -> FleetReport {
        self.run_with(&SerialExecutor)
    }

    /// Run the fleet to its horizon with `exec` driving the per-epoch
    /// shard closures, and summarize.
    pub fn run_with(&mut self, exec: &dyn ShardExecutor) -> FleetReport {
        let horizon = SimTime::ZERO + self.cfg.duration;
        let clock = EpochClock::new(self.delta, horizon);
        self.core.lock().expect("core shard poisoned").init();
        {
            let shards = &self.shards;
            exec.run_indexed(shards.len(), &|i| {
                shards[i].lock().expect("shard poisoned").init();
            });
        }
        loop {
            self.exchange();
            let Some(next) = self.min_peek() else { break };
            if next > horizon {
                break;
            }
            let bound = clock.bound_for(next);
            let shards = &self.shards;
            let core = &self.core;
            exec.run_indexed(shards.len() + 1, &|i| {
                if i < shards.len() {
                    shards[i].lock().expect("shard poisoned").run_until(bound);
                } else {
                    core.lock().expect("core shard poisoned").run_until(bound);
                }
            });
        }
        self.finalize(horizon)
    }

    /// Barrier exchange: move every outbox message into its destination
    /// shard's queue under the key its sender assigned. Arrival times are
    /// at or beyond the epoch bound by the lookahead argument, so no
    /// message ever lands in a queue's past.
    fn exchange(&mut self) {
        let mut core = self.core.lock().expect("core shard poisoned");
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            for msg in shard.outbox.drain(..) {
                let seg = core.slab.insert(msg.seg);
                let event = if msg.down {
                    CoreEvent::DownAtCore {
                        client: msg.client,
                        sf: msg.sf,
                        seg,
                    }
                } else {
                    CoreEvent::UpAtCore {
                        client: msg.client,
                        sf: msg.sf,
                        seg,
                    }
                };
                core.queue.schedule_keyed(msg.at, msg.key, (msg.key, event));
            }
        }
        if !core.outbox.is_empty() {
            for msg in core.outbox.drain(..) {
                let sid = self
                    .starts
                    .partition_point(|&start| start <= msg.client as usize)
                    - 1;
                self.staging[sid].push(msg);
            }
            for (sid, pending) in self.staging.iter_mut().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                let mut shard = self.shards[sid].lock().expect("shard poisoned");
                for msg in pending.drain(..) {
                    let local = msg.client - shard.base;
                    let seg = shard.slab.insert(msg.seg);
                    let event = if msg.down {
                        ClientEvent::DownFromCore {
                            local,
                            sf: msg.sf,
                            seg,
                        }
                    } else {
                        ClientEvent::UpFromCore {
                            local,
                            sf: msg.sf,
                            seg,
                        }
                    };
                    shard
                        .queue
                        .schedule_keyed(msg.at, msg.key, (msg.key, event));
                }
            }
        }
    }

    /// The earliest pending event across every shard, or `None` when all
    /// queues have drained.
    fn min_peek(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for shard in &self.shards {
            let t = shard.lock().expect("shard poisoned").queue.peek_time();
            min = match (min, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let t = self
            .core
            .lock()
            .expect("core shard poisoned")
            .queue
            .peek_time();
        match (min, t) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn finalize(&mut self, horizon: SimTime) -> FleetReport {
        let mut live = 0;
        let mut double_frees = 0;
        for (sid, shard) in self.shards.iter().enumerate() {
            let stats = shard.lock().expect("shard poisoned").finalize(sid, horizon);
            live += stats.live;
            double_frees += stats.double_frees;
        }
        let mut core = self.core.lock().expect("core shard poisoned");
        let stats = core.finalize();
        live += stats.live;
        double_frees += stats.double_frees;
        // Messages still sitting in outboxes carry their segments by value
        // and drop with them; only slab-parked segments are balance-checked.
        self.telemetry.check_invariants(horizon, |obs| {
            obs.check_segment_slab(horizon, "sharded-fleet", live, double_frees)
        });

        // Merge the shards' trace records into the outer pipeline in the
        // canonical (time, key) order. Records with equal (time, key) come
        // from one driving event on one shard, so the stable sort keeps
        // their emission order.
        let mut records: Vec<(SimTime, u64, TraceEvent)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            if let Some(tap) = &shard.tap {
                records.append(&mut tap.lock().expect("tap poisoned").records);
            }
        }
        if let Some(tap) = &core.tap {
            records.append(&mut tap.lock().expect("tap poisoned").records);
        }
        records.sort_by_key(|&(t, key, _)| (t, key));
        for (t, _, event) in records {
            self.telemetry.emit(t, event);
        }

        // Merge metric registries in shard order, core last.
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            if let Some(m) = shard.telemetry.metrics() {
                self.telemetry.with_metrics(|outer| outer.merge(&m));
            }
        }
        if let Some(m) = core.telemetry.metrics() {
            self.telemetry.with_metrics(|outer| outer.merge(&m));
        }

        // Fixed-order report reductions (ascending client id).
        let secs = self.cfg.duration.as_secs_f64();
        self.per_client_buf.clear();
        let mut packets_forwarded = 0;
        let mut total_queue_drops = 0;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for conn in &shard.rows.client {
                self.per_client_buf
                    .push(reduce::mbps(conn.bytes_delivered(), secs));
            }
            shard.for_each_port(|p| {
                packets_forwarded += p.link().delivered_packets();
                total_queue_drops += p.link().dropped_queue();
            });
        }
        core.for_each_port(|p| {
            packets_forwarded += p.link().delivered_packets();
            total_queue_drops += p.link().dropped_queue();
        });
        let mptcp_every = self.cfg.mptcp_every;
        let stats = reduce::fairness_stats(&self.per_client_buf, |i| {
            mptcp_every != 0 && i % mptcp_every == 0
        });
        let bp = &core.ports.bottleneck;
        FleetReport {
            clients: self.cfg.clients,
            duration_s: secs,
            aggregate_mbps: stats.aggregate_mbps,
            mptcp_mean_mbps: stats.mptcp_mean_mbps,
            tcp_mean_mbps: stats.tcp_mean_mbps,
            mptcp_tcp_ratio: stats.mptcp_tcp_ratio,
            jain_index: stats.jain_index,
            bottleneck_drops: bp.link().dropped_queue(),
            bottleneck_ecn_marks: bp.ecn_marked(),
            bottleneck_peak_queue_bytes: bp.peak_queue_bytes(),
            total_queue_drops,
            cross_packets: core.cross_packets,
            faults_injected: core.faults_applied,
            packets_forwarded,
            per_client_mbps: std::mem::take(&mut self.per_client_buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(clients: usize, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::contended(clients, seed);
        cfg.duration = SimDuration::from_secs(2);
        cfg.bottleneck.rate_bps = 20_000_000;
        cfg.cross_sources = 1;
        cfg
    }

    fn report_json(r: &FleetReport) -> String {
        serde_json::to_string(r).expect("report serializes")
    }

    #[test]
    fn lookahead_is_the_minimum_boundary_latency() {
        let cfg = FleetConfig::contended(4, 1);
        // contended preset: backbone 1 ms, access_a 3 ms, access_b 15 ms,
        // bottleneck 10 ms → Δ = 1 ms.
        assert_eq!(lookahead(&cfg), SimDuration::from_millis(1));
        let mut tcp_only = cfg.clone();
        tcp_only.mptcp_every = 0;
        tcp_only.access_b.prop_delay = SimDuration::ZERO;
        // access_b is out of the boundary set when no client uses it.
        assert_eq!(lookahead(&tcp_only), SimDuration::from_millis(1));
    }

    #[test]
    fn zero_lookahead_is_rejected() {
        let mut cfg = small(2, 1);
        cfg.access_a.prop_delay = SimDuration::ZERO;
        assert_eq!(
            ShardedFleetSim::try_new_with_telemetry(cfg, 2, Telemetry::disabled()).err(),
            Some(FleetConfigError::NoLookahead)
        );
    }

    #[test]
    fn every_client_makes_progress() {
        let mut sim = ShardedFleetSim::new(small(6, 9), 3);
        let report = sim.run();
        assert_eq!(report.per_client_mbps.len(), 6);
        for (i, &mbps) in report.per_client_mbps.iter().enumerate() {
            assert!(mbps > 0.05, "client {i} starved: {mbps} Mbps");
        }
        assert!(report.aggregate_mbps > 5.0, "{report:?}");
        assert!(report.jain_index > 0.5, "{report:?}");
        assert!(report.packets_forwarded > 0, "{report:?}");
    }

    #[test]
    fn bottleneck_is_actually_shared() {
        let mut sim = ShardedFleetSim::new(small(6, 10), 2);
        let report = sim.run();
        assert!(report.bottleneck_drops > 0, "{report:?}");
        assert!(report.aggregate_mbps <= 20.0, "{report:?}");
        assert!(report.bottleneck_ecn_marks > 0, "{report:?}");
    }

    #[test]
    fn shard_count_is_invisible_in_the_report() {
        let reference = report_json(&ShardedFleetSim::new(small(7, 42), 1).run());
        for shards in [2, 3, 4, 7] {
            let got = report_json(&ShardedFleetSim::new(small(7, 42), shards).run());
            assert_eq!(got, reference, "shards={shards} diverged");
        }
    }

    #[test]
    fn shard_count_clamps_to_the_population() {
        let mut sim = ShardedFleetSim::new(small(3, 5), 64);
        assert_eq!(sim.shards(), 3);
        let report = sim.run();
        assert_eq!(report.clients, 3);
    }

    #[test]
    fn same_seed_same_report() {
        let a = ShardedFleetSim::new(small(5, 77), 2).run();
        let b = ShardedFleetSim::new(small(5, 77), 2).run();
        assert_eq!(report_json(&a), report_json(&b));
    }

    #[test]
    fn faults_cross_epoch_barriers() {
        let mut cfg = small(4, 5);
        cfg.duration = SimDuration::from_secs(6);
        let plan = FaultPlan::new().bandwidth_collapse(
            FaultTarget::Core,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            0,
            &[5_000_000],
            SimDuration::from_secs(1),
        );
        let run = |shards: usize| {
            let mut sim = ShardedFleetSim::new(cfg.clone(), shards);
            sim.attach_faults(plan.clone());
            sim.run()
        };
        let reference = run(1);
        assert!(reference.faults_injected >= 2, "{reference:?}");
        for &mbps in &reference.per_client_mbps {
            assert!(mbps > 0.0, "{reference:?}");
        }
        assert_eq!(report_json(&run(4)), report_json(&reference));
    }
}
