//! The fleet harness: many client stacks sharing one bottleneck.
//!
//! One server host feeds N clients through a two-router core whose
//! forward edge is the shared bottleneck. Clients alternate between plain
//! TCP (one subflow) and MPTCP (a WiFi-like and an LTE-like access path,
//! LIA-coupled by default) — which is exactly the population the paper's
//! "do no harm" property is stated over: at a shared bottleneck an MPTCP
//! connection's aggregate must not out-compete a single TCP flow.
//!
//! Each client's access links are modelled as leaf "NIC" nodes hanging
//! off the client-side router, one per interface, so static destination
//! routing steers every subflow over its own access edge while all of
//! them cross the same core port. Optional unresponsive cross-traffic
//! sources ([`CrossTrafficSource`]) load the bottleneck further.
//!
//! The whole fleet is one deterministic discrete-event simulation over
//! the shared [`EventQueue`]: same config + same seed ⇒ byte-identical
//! reports, which is what lets the experiment runner farm fleet scenarios
//! out across worker threads without changing the output.

use crate::fabric::{Fabric, Hop};
use crate::reduce;
use crate::topology::{NodeId, TopologyBuilder};
use emptcp_faults::injector::FaultInjector;
use emptcp_faults::{FaultPlan, FaultTarget};
use emptcp_mptcp::{MpConnection, Role, SubflowId};
use emptcp_phy::modulation::OnOff;
use emptcp_phy::{IfaceKind, LinkConfig};
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime, TimerId};
use emptcp_tcp::{CcAlgorithm, SegRef, SegSlabStats, Segment, SegmentSlab, TcpConfig};
use emptcp_telemetry::Telemetry;
use emptcp_workload::CrossTrafficSource;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a fleet run.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of client stacks.
    pub clients: usize,
    /// Every `mptcp_every`-th client (starting at 0) runs MPTCP with two
    /// subflows; the rest are single-subflow TCP. `1` = all MPTCP,
    /// `usize::MAX` ≈ all TCP.
    pub mptcp_every: usize,
    /// LIA coupling for the MPTCP clients (false = per-subflow Reno, the
    /// ablation that demonstrates why "do no harm" needs coupling).
    pub coupled: bool,
    /// The shared core bottleneck (router → router, toward the clients).
    pub bottleneck: LinkConfig,
    /// WiFi-like access edge (client-side router → NIC a).
    pub access_a: LinkConfig,
    /// LTE-like access edge (client-side router → NIC b).
    pub access_b: LinkConfig,
    /// Timed-bulk horizon: every client downloads as much as it can until
    /// this much simulated time has passed.
    pub duration: SimDuration,
    /// Unresponsive on-off cross-traffic sources loading the bottleneck.
    pub cross_sources: usize,
    /// Mean offered rate per cross source while On, bits/s.
    pub cross_rate_bps: u64,
    /// Root seed for all randomness in the run.
    pub seed: u64,
}

impl FleetConfig {
    /// A contended defaults set: `clients` stacks behind a 100 Mbps core
    /// with roomy access links, half MPTCP, light cross-traffic.
    pub fn contended(clients: usize, seed: u64) -> FleetConfig {
        let mut fc = template(
            "fleet-contended",
            include_str!("../../../scenarios/fleet-contended.scenario"),
        );
        fc.clients = clients;
        fc.seed = seed;
        fc
    }

    /// The minimal "do no harm" cell: one MPTCP client (two subflows)
    /// against one TCP client on a tight core with a BDP-ish queue and no
    /// cross-traffic, so congestion control alone decides the split.
    /// Shared by the `fairness` exhibit and the LIA golden test.
    pub fn do_no_harm_cell(seed: u64) -> FleetConfig {
        let mut fc = template(
            "do-no-harm-cell",
            include_str!("../../../scenarios/do-no-harm-cell.scenario"),
        );
        fc.seed = seed;
        fc
    }

    /// Check the configuration up front. Degenerate values used to fail
    /// deep inside [`FleetSim::run`] (a division by a zero-capacity link,
    /// an index into an empty stack list); now they come back as one
    /// [`FleetConfigError`] before the topology is built.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.clients == 0 {
            return Err(FleetConfigError::NoClients);
        }
        if self.bottleneck.rate_bps == 0 {
            return Err(FleetConfigError::ZeroCapacityLink("bottleneck"));
        }
        if self.access_a.rate_bps == 0 {
            return Err(FleetConfigError::ZeroCapacityLink("access_a"));
        }
        if self.access_b.rate_bps == 0 {
            return Err(FleetConfigError::ZeroCapacityLink("access_b"));
        }
        if self.duration == SimDuration::ZERO {
            return Err(FleetConfigError::EmptyWorkload);
        }
        if self.cross_sources > 0 && self.cross_rate_bps == 0 {
            return Err(FleetConfigError::SilentCrossTraffic);
        }
        Ok(())
    }
}

/// Parse the `world.Fleet` config out of an embedded corpus scenario
/// file, once per template. The full scenario schema lives in the
/// `emptcp-scenario` crate (which depends on this one); the presets only
/// need the fleet slice of it, so they read the JSON structurally.
fn template(name: &'static str, text: &'static str) -> FleetConfig {
    use std::sync::OnceLock;
    static CONTENDED: OnceLock<FleetConfig> = OnceLock::new();
    static DO_NO_HARM: OnceLock<FleetConfig> = OnceLock::new();
    let cell = match name {
        "fleet-contended" => &CONTENDED,
        _ => &DO_NO_HARM,
    };
    cell.get_or_init(|| {
        let value: serde_json::Value = serde_json::from_str(text)
            .unwrap_or_else(|e| panic!("scenario file `{name}` is not valid JSON: {e:?}"));
        let fleet = value
            .get("world")
            .and_then(|w| w.get("Fleet"))
            .cloned()
            .unwrap_or_else(|| panic!("scenario file `{name}` has no Fleet world"));
        serde_json::from_value(fleet)
            .unwrap_or_else(|e| panic!("scenario file `{name}` fleet config is malformed: {e:?}"))
    })
    .clone()
}

/// Why a [`FleetConfig`] cannot run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FleetConfigError {
    /// `clients == 0`: there is nothing to simulate (and nothing to report
    /// fairness over).
    NoClients,
    /// A link was configured with `rate_bps == 0`; serialization time
    /// would be infinite. The payload names the offending link field.
    ZeroCapacityLink(&'static str),
    /// `duration == 0`: the timed-bulk workload is empty.
    EmptyWorkload,
    /// Cross-traffic sources were requested with a zero offered rate, so
    /// their next-emission interval is undefined.
    SilentCrossTraffic,
    /// Every cross-shard link has zero propagation delay, so the sharded
    /// engine's conservative lookahead bound is zero and epochs cannot
    /// make progress. Only [`ShardedFleetSim`](crate::shard::ShardedFleetSim)
    /// construction reports this; the unsharded engine accepts the config.
    NoLookahead,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::NoClients => write!(f, "fleet config has zero clients"),
            FleetConfigError::ZeroCapacityLink(which) => {
                write!(f, "fleet config link `{which}` has zero capacity")
            }
            FleetConfigError::EmptyWorkload => {
                write!(
                    f,
                    "fleet config duration is zero (empty timed-bulk workload)"
                )
            }
            FleetConfigError::SilentCrossTraffic => write!(
                f,
                "fleet config requests cross-traffic sources with a zero offered rate"
            ),
            FleetConfigError::NoLookahead => write!(
                f,
                "fleet config has no cross-shard link latency to bound epochs (zero lookahead)"
            ),
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// What one fleet run produced.
#[derive(Clone, Debug, Serialize)]
pub struct FleetReport {
    /// Client stack count.
    pub clients: usize,
    /// Simulated horizon (s).
    pub duration_s: f64,
    /// Per-client goodput, Mbit/s, in client order.
    pub per_client_mbps: Vec<f64>,
    /// Sum of per-client goodput.
    pub aggregate_mbps: f64,
    /// Mean goodput of the MPTCP clients (0 when none).
    pub mptcp_mean_mbps: f64,
    /// Mean goodput of the TCP clients (0 when none).
    pub tcp_mean_mbps: f64,
    /// `mptcp_mean_mbps / tcp_mean_mbps` — the "do no harm" ratio
    /// (0 when either side is absent).
    pub mptcp_tcp_ratio: f64,
    /// Jain's fairness index over per-client goodput (1 = perfectly fair).
    pub jain_index: f64,
    /// Tail drops at the designated bottleneck port.
    pub bottleneck_drops: u64,
    /// ECN marks at the bottleneck port.
    pub bottleneck_ecn_marks: u64,
    /// Deepest bottleneck queue observed (bytes).
    pub bottleneck_peak_queue_bytes: u64,
    /// Queue drops across every port of the fabric.
    pub total_queue_drops: u64,
    /// Cross-traffic packets offered to the core.
    pub cross_packets: u64,
    /// Fault events applied (0 without an attached plan).
    pub faults_injected: u64,
    /// Packets forwarded across every port in the run — the deterministic
    /// numerator of the `sim_pkts_per_sec` throughput benchmark.
    pub packets_forwarded: u64,
}

pub(crate) const CLIENT_REQUEST_BYTES: u64 = 400;

struct ClientStack {
    client: MpConnection,
    server: MpConnection,
    /// Destination NIC node per subflow index.
    nic_nodes: Vec<NodeId>,
    mptcp: bool,
    request_answered: bool,
}

enum Event {
    /// A packet surfacing at `node`, heading to a stack. The segment is
    /// parked in the sim's [`SegmentSlab`]; the event carries only the
    /// handle, keeping queue payloads small. Whoever consumes the event —
    /// the hop handler or the end-of-run reclaim sweep — must `take` the
    /// segment back exactly once (the slab's leak counters enforce it).
    Hop {
        conn: u32,
        sf: SubflowId,
        to_client: bool,
        node: NodeId,
        seg: SegRef,
    },
    /// A cross-traffic packet surfacing at `node` (sinked on arrival).
    CrossHop { src: u32, node: NodeId },
    /// A cross source is due to emit (or toggle).
    CrossPoll { src: u32 },
    /// Re-armed RTO/timer sweep over every stack.
    TimerCheck,
}

/// A many-client fleet simulation over a [`Fabric`].
pub struct FleetSim {
    cfg: FleetConfig,
    fabric: Fabric,
    queue: EventQueue<Event>,
    rng: SimRng,
    stacks: Vec<ClientStack>,
    server_node: NodeId,
    /// Where cross-traffic enters (the core router) and dies (a sink host).
    cross_entry: NodeId,
    cross_sink: NodeId,
    cross: Vec<CrossTrafficSource>,
    cross_packets: u64,
    bottleneck_port: usize,
    timer_handle: Option<(SimTime, TimerId)>,
    /// Cached `min(client, server).next_deadline()` per stack, maintained
    /// at every point a stack is touched, so [`FleetSim::schedule_timers`]
    /// scans a flat array instead of interrogating every endpoint after
    /// every event.
    stack_deadline: Vec<Option<SimTime>>,
    injector: Option<FaultInjector>,
    faults_applied: u64,
    telemetry: Telemetry,
    /// In-flight segments, one per queued [`Event::Hop`].
    seg_slab: SegmentSlab,
    /// Report-assembly buffer, sized once from the config so end-of-run
    /// summarization allocates nothing beyond the report it hands back.
    per_client_buf: Vec<f64>,
}

impl FleetSim {
    /// Build the fleet: topology, fabric, stacks, cross-traffic.
    ///
    /// Panics on an invalid configuration; use [`FleetSim::try_new`] to get
    /// the typed error instead.
    pub fn new(cfg: FleetConfig) -> FleetSim {
        FleetSim::new_with_telemetry(cfg, Telemetry::disabled())
    }

    /// Fallible construction: an invalid [`FleetConfig`] comes back as a
    /// [`FleetConfigError`] instead of a panic deep inside the run loop.
    pub fn try_new(cfg: FleetConfig) -> Result<FleetSim, FleetConfigError> {
        FleetSim::try_new_with_telemetry(cfg, Telemetry::disabled())
    }

    /// Fallible construction with an attached telemetry pipeline.
    pub fn try_new_with_telemetry(
        cfg: FleetConfig,
        telemetry: Telemetry,
    ) -> Result<FleetSim, FleetConfigError> {
        cfg.validate()?;
        Ok(FleetSim::build(cfg, telemetry))
    }

    /// Build with an attached telemetry pipeline (trace events from every
    /// stack and router, metrics published at end of run).
    ///
    /// Panics on an invalid configuration; use
    /// [`FleetSim::try_new_with_telemetry`] to get the typed error instead.
    pub fn new_with_telemetry(cfg: FleetConfig, telemetry: Telemetry) -> FleetSim {
        match FleetSim::try_new_with_telemetry(cfg, telemetry) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid fleet config: {e}"),
        }
    }

    fn build(cfg: FleetConfig, telemetry: Telemetry) -> FleetSim {
        let now = SimTime::ZERO;
        let mut b = TopologyBuilder::new();
        let server = b.host("server");
        let core_in = b.router("core-in");
        let core_out = b.router("core-out");
        let backbone = LinkConfig::backbone(SimDuration::from_millis(1));
        b.symmetric_link(server, core_in, backbone);
        // The forward core edge is the shared bottleneck; the reverse
        // (ack) direction is generous.
        let (bottleneck_port, _) = b.link(
            core_in,
            core_out,
            cfg.bottleneck,
            LinkConfig::backbone(cfg.bottleneck.prop_delay),
        );
        let cross_sink = b.host("cross-sink");
        b.symmetric_link(core_out, cross_sink, backbone);

        let mut nic_nodes_per_client = Vec::with_capacity(cfg.clients);
        for i in 0..cfg.clients {
            let mptcp = cfg.mptcp_every != 0 && i % cfg.mptcp_every == 0;
            // Access uplinks mirror the downlink config: contention there
            // is real (acks queue behind data on slow uplinks).
            let nic_a = b.host(&format!("c{i}-nic-a"));
            b.link(core_out, nic_a, cfg.access_a, cfg.access_a);
            let mut nics = vec![nic_a];
            if mptcp {
                let nic_b = b.host(&format!("c{i}-nic-b"));
                b.link(core_out, nic_b, cfg.access_b, cfg.access_b);
                nics.push(nic_b);
            }
            nic_nodes_per_client.push(nics);
        }

        let mut fabric = Fabric::new(b.build());
        fabric.designate(FaultTarget::Core, vec![bottleneck_port]);
        fabric.set_telemetry(telemetry.scope(u32::MAX));

        let root = SimRng::new(cfg.seed);
        let mut cross_rng = root.fork_labeled("cross");
        let cross = (0..cfg.cross_sources)
            .map(|i| {
                CrossTrafficSource::new(
                    now,
                    if i % 2 == 0 { OnOff::On } else { OnOff::Off },
                    cfg.cross_rate_bps,
                    1500,
                    0.5,
                    0.5,
                    cross_rng.fork(i as u64),
                )
            })
            .collect::<Vec<_>>();

        let mut stacks = Vec::with_capacity(cfg.clients);
        // LIA coupling needs the subflow CC to run the Lia increase rule —
        // `TcpConfig::default()` is plain Reno, under which `set_lia` is a
        // documented no-op. TCP clients always stay Reno.
        let mut mp_tcfg = TcpConfig::default();
        if cfg.coupled {
            mp_tcfg.algorithm = CcAlgorithm::Lia;
        }
        for (i, nics) in nic_nodes_per_client.iter().enumerate() {
            let mptcp = nics.len() > 1;
            let tcfg = if mptcp { mp_tcfg } else { TcpConfig::default() };
            let mut client = MpConnection::new(Role::Client, tcfg);
            let mut server_conn = MpConnection::new(Role::Server, tcfg);
            client.set_telemetry(telemetry.scope(i as u32));
            server_conn.set_telemetry(telemetry.scope(i as u32));
            client.set_coupled(cfg.coupled);
            server_conn.set_coupled(cfg.coupled);
            client.add_subflow(now, IfaceKind::Wifi);
            server_conn.add_subflow(now, IfaceKind::Wifi);
            if mptcp {
                client.add_subflow(now, IfaceKind::CellularLte);
                server_conn.add_subflow(now, IfaceKind::CellularLte);
            }
            // The request flows once the handshake completes; the server
            // answers with an effectively unbounded timed-bulk payload.
            client.write(CLIENT_REQUEST_BYTES);
            stacks.push(ClientStack {
                client,
                server: server_conn,
                nic_nodes: nics.clone(),
                mptcp,
                request_answered: false,
            });
        }

        let stack_count = stacks.len();
        let mut sim = FleetSim {
            cfg,
            fabric,
            queue: EventQueue::new(),
            rng: root.fork_labeled("net"),
            stacks,
            server_node: server,
            cross_entry: core_in,
            cross_sink,
            cross,
            cross_packets: 0,
            bottleneck_port,
            timer_handle: None,
            stack_deadline: vec![None; stack_count],
            injector: None,
            faults_applied: 0,
            telemetry,
            seg_slab: SegmentSlab::new(),
            per_client_buf: Vec::with_capacity(stack_count),
        };
        for i in 0..sim.cross.len() {
            let at = sim.cross[i].next_event();
            sim.queue.schedule(at, Event::CrossPoll { src: i as u32 });
        }
        sim
    }

    /// Attach a fault plan; `FaultTarget::Core` hits the bottleneck port.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        let mut injector = FaultInjector::new(plan);
        injector.set_telemetry(self.telemetry.scope(u32::MAX));
        self.injector = Some(injector);
    }

    /// The designated bottleneck port id.
    pub fn bottleneck_port(&self) -> usize {
        self.bottleneck_port
    }

    /// The fabric (port counters, topology).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Raw per-client delivered byte counts (response payload reaching each
    /// client), in client order. The golden drain-path test pins these
    /// exactly; [`FleetReport::per_client_mbps`] is the same data scaled to
    /// a float rate.
    pub fn per_client_delivered(&self) -> Vec<u64> {
        self.stacks
            .iter()
            .map(|s| s.client.bytes_delivered())
            .collect()
    }

    fn poll_faults(&mut self, now: SimTime) {
        if let Some(mut inj) = self.injector.take() {
            self.faults_applied += inj.poll(now, &mut self.fabric) as u64;
            self.injector = Some(inj);
        }
    }

    /// Launch a packet from whichever node owns the transmitting end.
    fn send(&mut self, now: SimTime, conn: u32, sf: SubflowId, seg: Segment, from_client: bool) {
        let stack = &self.stacks[conn as usize];
        let (start, dst) = if from_client {
            (stack.nic_nodes[sf.0 as usize], self.server_node)
        } else {
            (self.server_node, stack.nic_nodes[sf.0 as usize])
        };
        self.hop(now, conn, sf, !from_client, start, dst, seg);
    }

    /// Advance a packet one hop; schedule the next surface or drop it. A
    /// forwarded segment is parked in the slab until its hop event pops.
    #[allow(clippy::too_many_arguments)]
    fn hop(
        &mut self,
        now: SimTime,
        conn: u32,
        sf: SubflowId,
        to_client: bool,
        node: NodeId,
        dst: NodeId,
        seg: Segment,
    ) {
        let outcome = self
            .fabric
            .step(now, node, dst, seg.wire_bytes(), &mut self.rng);
        match outcome {
            Hop::Arrived => self.deliver(now, conn, sf, to_client, seg),
            Hop::Forwarded { node, at, .. } => {
                let seg = self.seg_slab.insert(seg);
                self.queue.schedule(
                    at,
                    Event::Hop {
                        conn,
                        sf,
                        to_client,
                        node,
                        seg,
                    },
                );
            }
            Hop::Dropped(_) | Hop::Unroutable => {}
        }
    }

    fn deliver(&mut self, now: SimTime, conn: u32, sf: SubflowId, to_client: bool, seg: Segment) {
        let i = conn as usize;
        if to_client {
            self.stacks[i].client.on_segment(now, sf, seg);
        } else {
            self.stacks[i].server.on_segment(now, sf, seg);
            self.feed_server(i);
        }
        self.drain_stack(now, i);
        self.refresh_deadline(i);
    }

    /// Timed bulk: the first complete request unlocks a response far
    /// larger than any horizon can drain.
    fn feed_server(&mut self, i: usize) {
        let stack = &mut self.stacks[i];
        if !stack.request_answered && stack.server.bytes_delivered() >= CLIENT_REQUEST_BYTES {
            stack.request_answered = true;
            stack.server.write(1 << 42);
        }
    }

    /// Drain both endpoints of stack `i` — the full sweep used at start of
    /// run and after a timer fires on the whole fleet. Segments launch as
    /// they are polled: `send` never re-enters the stack (the first fabric
    /// step of a fresh launch always forwards), so launching immediately is
    /// order-identical to collecting a batch first.
    fn drain_stack(&mut self, now: SimTime, i: usize) {
        self.drain_conn(now, i, true);
        self.drain_conn(now, i, false);
    }

    /// Drain one endpoint of stack `i` to exhaustion.
    fn drain_conn(&mut self, now: SimTime, i: usize, client_side: bool) {
        loop {
            let stack = &mut self.stacks[i];
            let side = if client_side {
                &mut stack.client
            } else {
                &mut stack.server
            };
            let Some((sf, seg)) = side.poll_transmit(now) else {
                break;
            };
            self.send(now, i as u32, sf, seg, client_side);
        }
    }

    /// Re-derive the cached deadline of stack `i` from its endpoints.
    fn refresh_deadline(&mut self, i: usize) {
        let s = &self.stacks[i];
        self.stack_deadline[i] = match (s.client.next_deadline(), s.server.next_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    fn schedule_timers(&mut self, now: SimTime) {
        let next = self
            .stack_deadline
            .iter()
            .flatten()
            .copied()
            .chain(self.injector.as_ref().and_then(|i| i.next_deadline()))
            .min();
        if let Some(d) = next {
            let d = d.max(now);
            let need = match self.timer_handle {
                Some((t, _)) => d < t,
                None => true,
            };
            if need {
                if let Some((_, id)) = self.timer_handle.take() {
                    self.queue.cancel(id);
                }
                let id = self.queue.schedule(d, Event::TimerCheck);
                self.timer_handle = Some((d, id));
            }
        }
    }

    fn on_timer_check(&mut self, now: SimTime) {
        self.timer_handle = None;
        self.poll_faults(now);
        for i in 0..self.stacks.len() {
            self.stacks[i].client.on_deadline(now);
            self.stacks[i].server.on_deadline(now);
            self.drain_stack(now, i);
            self.refresh_deadline(i);
        }
    }

    fn on_cross_poll(&mut self, now: SimTime, src: u32) {
        let i = src as usize;
        let packets = self.cross[i].poll(now);
        let bytes = self.cross[i].packet_bytes();
        for _ in 0..packets {
            self.cross_packets += 1;
            self.cross_hop(now, src, self.cross_entry, bytes);
        }
        let at = self.cross[i].next_event();
        self.queue.schedule(at, Event::CrossPoll { src });
    }

    fn cross_hop(&mut self, now: SimTime, src: u32, node: NodeId, bytes: u64) {
        // Arrived packets are sinked; drops are the point.
        if let Hop::Forwarded { node, at, .. } =
            self.fabric
                .step(now, node, self.cross_sink, bytes, &mut self.rng)
        {
            self.queue.schedule(at, Event::CrossHop { src, node });
        }
    }

    /// Run the fleet to its horizon and summarize.
    pub fn run(&mut self) -> FleetReport {
        let horizon = SimTime::ZERO + self.cfg.duration;
        self.poll_faults(SimTime::ZERO);
        for i in 0..self.stacks.len() {
            self.drain_stack(SimTime::ZERO, i);
            self.refresh_deadline(i);
        }
        self.schedule_timers(SimTime::ZERO);
        while let Some((now, event)) = self.queue.pop() {
            if now > horizon {
                self.reclaim(event);
                break;
            }
            match event {
                Event::Hop {
                    conn,
                    sf,
                    to_client,
                    node,
                    seg,
                } => {
                    let seg = self
                        .seg_slab
                        .take(seg)
                        .expect("hop event holds a parked segment");
                    self.poll_faults(now);
                    let dst = if to_client {
                        self.stacks[conn as usize].nic_nodes[sf.0 as usize]
                    } else {
                        self.server_node
                    };
                    self.hop(now, conn, sf, to_client, node, dst, seg);
                    self.schedule_timers(now);
                }
                // Cross-traffic events touch no stack and skip fault
                // polling, so no deadline can have moved: re-running
                // `schedule_timers` would recompute the same minimum and
                // take the same `d < t` branch. Skip it.
                Event::CrossHop { src, node } => {
                    let bytes = self.cross[src as usize].packet_bytes();
                    self.cross_hop(now, src, node, bytes);
                }
                Event::CrossPoll { src } => self.on_cross_poll(now, src),
                Event::TimerCheck => {
                    self.on_timer_check(now);
                    self.schedule_timers(now);
                }
            }
        }
        // Reclaim the segments of every hop event still queued, so the
        // slab's leak counters certify that each parked segment was taken
        // exactly once ([`FleetSim::seg_slab_stats`] must end at live 0).
        while let Some((_, event)) = self.queue.pop() {
            self.reclaim(event);
        }
        // The slab must balance once every queued segment is reclaimed;
        // a miss here is a host bug, surfaced through the invariant
        // pipeline rather than a panic so fuzzed runs report it.
        let slab = self.seg_slab.stats();
        self.telemetry.check_invariants(horizon, |obs| {
            obs.check_segment_slab(horizon, "fleet", slab.live, slab.double_frees)
        });
        // Flush sub-threshold Delivered residue so trace totals equal the
        // report's delivered-byte counts; stamped at the horizon so the
        // flush ordering is a pure function of the configuration.
        for stack in &mut self.stacks {
            stack.client.flush_delivered_trace(horizon);
            stack.server.flush_delivered_trace(horizon);
        }
        self.fabric.publish_metrics();
        self.report()
    }

    /// Return an unprocessed event's parked segment (if any) to the slab.
    fn reclaim(&mut self, event: Event) {
        if let Event::Hop { seg, .. } = event {
            self.seg_slab
                .take(seg)
                .expect("queued hop event holds a parked segment");
        }
    }

    /// Segment-slab allocation counters, consumed by the invariant
    /// battery's leak oracle after [`FleetSim::run`] returns: every parked
    /// segment must have been reclaimed (`live == 0`, `double_frees == 0`).
    pub fn seg_slab_stats(&self) -> SegSlabStats {
        self.seg_slab.stats()
    }

    fn report(&mut self) -> FleetReport {
        let secs = self.cfg.duration.as_secs_f64();
        self.per_client_buf.clear();
        // Goodput is response payload only; the 400 B request rides the
        // other direction and is excluded by construction. The fold runs
        // in ascending client id — the fixed reduction order the sharded
        // engine reproduces regardless of its partition.
        self.per_client_buf.extend(
            self.stacks
                .iter()
                .map(|s| reduce::mbps(s.client.bytes_delivered(), secs)),
        );
        let stacks = &self.stacks;
        let stats = reduce::fairness_stats(&self.per_client_buf, |i| stacks[i].mptcp);
        let bp = self.fabric.port(self.bottleneck_port);
        FleetReport {
            clients: self.cfg.clients,
            duration_s: secs,
            aggregate_mbps: stats.aggregate_mbps,
            mptcp_mean_mbps: stats.mptcp_mean_mbps,
            tcp_mean_mbps: stats.tcp_mean_mbps,
            mptcp_tcp_ratio: stats.mptcp_tcp_ratio,
            jain_index: stats.jain_index,
            bottleneck_drops: bp.link().dropped_queue(),
            bottleneck_ecn_marks: bp.ecn_marked(),
            bottleneck_peak_queue_bytes: bp.peak_queue_bytes(),
            total_queue_drops: self.fabric.total_queue_drops(),
            cross_packets: self.cross_packets,
            faults_injected: self.faults_applied,
            packets_forwarded: self.fabric.total_delivered_packets(),
            per_client_mbps: std::mem::take(&mut self.per_client_buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(clients: usize, seed: u64) -> FleetConfig {
        let mut cfg = FleetConfig::contended(clients, seed);
        cfg.duration = SimDuration::from_secs(4);
        cfg.bottleneck.rate_bps = 20_000_000;
        cfg.cross_sources = 1;
        cfg
    }

    #[test]
    fn every_client_makes_progress() {
        let mut sim = FleetSim::new(small(6, 9));
        let report = sim.run();
        assert_eq!(report.per_client_mbps.len(), 6);
        for (i, &mbps) in report.per_client_mbps.iter().enumerate() {
            assert!(mbps > 0.05, "client {i} starved: {mbps} Mbps");
        }
        assert!(report.aggregate_mbps > 5.0, "{report:?}");
        assert!(report.jain_index > 0.5, "{report:?}");
    }

    #[test]
    fn bottleneck_is_actually_shared() {
        // Offered load (6 clients + cross traffic) far exceeds 20 Mbps, so
        // the core queue must overflow and the aggregate must saturate
        // near (but never beyond) the bottleneck rate.
        let mut sim = FleetSim::new(small(6, 10));
        let report = sim.run();
        assert!(report.bottleneck_drops > 0, "{report:?}");
        assert!(report.aggregate_mbps <= 20.0, "{report:?}");
        assert!(report.aggregate_mbps > 12.0, "{report:?}");
        assert!(report.bottleneck_ecn_marks > 0, "{report:?}");
    }

    #[test]
    fn same_seed_same_report() {
        let a = FleetSim::new(small(5, 77)).run();
        let b = FleetSim::new(small(5, 77)).run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn degenerate_configs_fail_with_typed_errors() {
        let mut cfg = FleetConfig::contended(4, 1);
        cfg.clients = 0;
        assert_eq!(
            FleetSim::try_new(cfg).err(),
            Some(FleetConfigError::NoClients)
        );

        let mut cfg = FleetConfig::contended(4, 1);
        cfg.bottleneck.rate_bps = 0;
        assert_eq!(
            FleetSim::try_new(cfg).err(),
            Some(FleetConfigError::ZeroCapacityLink("bottleneck"))
        );

        let mut cfg = FleetConfig::contended(4, 1);
        cfg.duration = SimDuration::ZERO;
        assert_eq!(
            FleetSim::try_new(cfg).err(),
            Some(FleetConfigError::EmptyWorkload)
        );

        let mut cfg = FleetConfig::contended(4, 1);
        cfg.cross_rate_bps = 0;
        assert_eq!(
            FleetSim::try_new(cfg).err(),
            Some(FleetConfigError::SilentCrossTraffic)
        );

        assert!(FleetSim::try_new(FleetConfig::contended(2, 1)).is_ok());
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = FleetConfig::do_no_harm_cell(7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn preset_templates_pin_their_published_values() {
        // The presets load from the committed corpus files; pin the values
        // every exhibit and golden test depends on, so an accidental edit
        // to a `.scenario` file fails here instead of shifting numbers.
        let fc = FleetConfig::contended(6, 9);
        assert_eq!(fc.clients, 6);
        assert_eq!(fc.seed, 9);
        assert_eq!(fc.mptcp_every, 2);
        assert!(fc.coupled);
        assert_eq!(fc.bottleneck.rate_bps, 100_000_000);
        assert_eq!(fc.bottleneck.queue_capacity, 256 * 1024);
        assert_eq!(fc.access_a.rate_bps, 50_000_000);
        assert_eq!(fc.access_b.rate_bps, 30_000_000);
        assert_eq!(fc.duration, SimDuration::from_secs(10));
        assert_eq!(fc.cross_sources, 2);
        assert_eq!(fc.cross_rate_bps, 4_000_000);

        let dnh = FleetConfig::do_no_harm_cell(3);
        assert_eq!(dnh.clients, 2);
        assert_eq!(dnh.seed, 3);
        assert_eq!(dnh.bottleneck.rate_bps, 16_000_000);
        assert_eq!(dnh.bottleneck.queue_capacity, 64 * 1024);
        assert_eq!(dnh.cross_sources, 0);
        assert_eq!(dnh.duration, SimDuration::from_secs(8));
    }

    #[test]
    fn core_fault_plan_stalls_and_recovers() {
        let mut cfg = small(4, 5);
        cfg.duration = SimDuration::from_secs(8);
        let mut sim = FleetSim::new(cfg);
        sim.attach_faults(FaultPlan::new().bandwidth_collapse(
            FaultTarget::Core,
            SimTime::from_secs(2),
            SimDuration::from_secs(2),
            0,
            &[5_000_000],
            SimDuration::from_secs(1),
        ));
        let report = sim.run();
        assert!(report.faults_injected >= 2, "{report:?}");
        // Everyone still finishes the horizon with bytes on the board.
        for &mbps in &report.per_client_mbps {
            assert!(mbps > 0.0, "{report:?}");
        }
    }
}
