//! Property-based tests on the PHY substrate: the RRC state machine and
//! the link pipe must hold their invariants under arbitrary usage.

use emptcp_phy::link::{EnqueueOutcome, Link, LinkConfig};
use emptcp_phy::rrc::{RrcConfig, RrcMachine, RrcState};
use emptcp_sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rrc_never_misorders_states(
        seed in 0u64..u64::MAX,
        steps in 10usize..300,
    ) {
        // Drive the machine with a random interleaving of activity and
        // polls; transitions must always be legal neighbours.
        let mut m = RrcMachine::new(RrcConfig::lte());
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut prev = m.state();
        for _ in 0..steps {
            now += SimDuration::from_millis(1 + rng.below(3000));
            let transitions = if rng.chance(0.5) {
                let (tr, ready) = m.on_activity(now);
                prop_assert!(ready >= now);
                tr
            } else {
                m.poll(now)
            };
            for t in transitions {
                let legal = matches!(
                    (prev, t.to),
                    (RrcState::Idle, RrcState::Promotion)
                        | (RrcState::Promotion, RrcState::Active)
                        | (RrcState::Active, RrcState::Tail)
                        | (RrcState::Tail, RrcState::Active)
                        | (RrcState::Tail, RrcState::Idle)
                );
                prop_assert!(legal, "illegal transition {prev:?} -> {:?}", t.to);
                prev = t.to;
            }
            prop_assert_eq!(prev, m.state());
        }
    }

    #[test]
    fn rrc_transition_times_monotone(
        seed in 0u64..u64::MAX,
    ) {
        let mut m = RrcMachine::new(RrcConfig::threeg());
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut last_at = SimTime::ZERO;
        for _ in 0..100 {
            now += SimDuration::from_millis(1 + rng.below(5000));
            let (a, _) = m.on_activity(now);
            let b = m.poll(now);
            for t in a.into_iter().chain(b) {
                prop_assert!(t.at >= last_at, "transition time went backwards");
                prop_assert!(t.at <= now);
                last_at = t.at;
            }
        }
    }

    #[test]
    fn link_deliveries_are_fifo(
        seed in 0u64..u64::MAX,
        rate_mbps in 1u64..100,
        n in 2usize..200,
    ) {
        // Same-direction deliveries must come out in enqueue order: the
        // serializer is a FIFO.
        let mut link = Link::new(LinkConfig {
            rate_bps: rate_mbps * 1_000_000,
            prop_delay: SimDuration::from_millis(10),
            queue_capacity: u64::MAX,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut last_delivery = SimTime::ZERO;
        for _ in 0..n {
            now += SimDuration::from_micros(rng.below(2000));
            match link.enqueue(now, 60 + rng.below(1440), &mut rng) {
                EnqueueOutcome::Delivered(at) => {
                    prop_assert!(at >= last_delivery, "FIFO violated");
                    prop_assert!(at > now, "delivery can't precede enqueue");
                    last_delivery = at;
                }
                EnqueueOutcome::Dropped(_) => unreachable!("lossless, unbounded"),
            }
        }
    }

    #[test]
    fn link_queue_never_exceeds_capacity(
        seed in 0u64..u64::MAX,
        cap_kb in 4u64..256,
    ) {
        let cap = cap_kb << 10;
        let mut link = Link::new(LinkConfig {
            rate_bps: 5_000_000,
            prop_delay: SimDuration::from_millis(5),
            queue_capacity: cap,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            now += SimDuration::from_micros(rng.below(1500));
            let _ = link.enqueue(now, 1500, &mut rng);
            prop_assert!(link.backlog_bytes(now) <= cap);
        }
    }

    #[test]
    fn link_throughput_bounded_by_rate(
        seed in 0u64..u64::MAX,
        rate_mbps in 1u64..50,
    ) {
        // Offered load far above capacity: accepted bytes over the busy
        // window can never exceed the line rate.
        let mut link = Link::new(LinkConfig {
            rate_bps: rate_mbps * 1_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: 64 << 10,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(seed);
        let mut accepted = 0u64;
        let mut last = SimTime::ZERO;
        let mut t = SimTime::ZERO;
        for _ in 0..2000 {
            t += SimDuration::from_micros(50);
            if let EnqueueOutcome::Delivered(at) = link.enqueue(t, 1500, &mut rng) {
                accepted += 1500;
                last = last.max(at);
            }
        }
        let horizon = last.as_secs_f64();
        prop_assert!(
            (accepted as f64) * 8.0 <= rate_mbps as f64 * 1e6 * horizon * 1.01,
            "throughput above line rate"
        );
    }
}
