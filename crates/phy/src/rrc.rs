//! The cellular radio-resource-control (RRC) state machine.
//!
//! 3GPP defines per-device radio states; the paper (§2.3) describes the two
//! that dominate energy: the **promotion** — an idle radio must spend a fixed
//! delay (at high power) being promoted to the connected state before the
//! first packet flows — and the **tail** — after the last packet the radio
//! lingers at high power for 6–12 s before demoting to idle.
//!
//! eMPTCP's delayed subflow establishment exists precisely to avoid paying
//! promotion + tail for transfers that fit in WiFi alone, so this machine is
//! modelled explicitly rather than folded into an average power number.
//!
//! The machine is poll-style: callers notify it of traffic via
//! [`RrcMachine::on_activity`], ask for the pending deadline via
//! [`RrcMachine::next_deadline`], and let timers fire via
//! [`RrcMachine::poll`].

use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{TelemetryScope, TraceEvent};
use serde::{Deserialize, Serialize};

/// Radio state as seen by the energy meter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RrcState {
    /// Low-power idle; no data can flow.
    Idle,
    /// Being promoted to connected: high power, data still blocked.
    Promotion,
    /// Connected and exchanging data.
    Active,
    /// Connected but idle: the high-power tail before demotion.
    Tail,
}

impl RrcState {
    /// Stable name for traces and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            RrcState::Idle => "Idle",
            RrcState::Promotion => "Promotion",
            RrcState::Active => "Active",
            RrcState::Tail => "Tail",
        }
    }

    /// All states, in residency-array order.
    pub const ALL: [RrcState; 4] = [
        RrcState::Idle,
        RrcState::Promotion,
        RrcState::Active,
        RrcState::Tail,
    ];

    fn index(self) -> usize {
        match self {
            RrcState::Idle => 0,
            RrcState::Promotion => 1,
            RrcState::Active => 2,
            RrcState::Tail => 3,
        }
    }

    /// True when the radio draws its high-power (connected) baseline.
    pub fn is_high_power(self) -> bool {
        !matches!(self, RrcState::Idle)
    }

    /// True when data can traverse the radio.
    pub fn can_transfer(self) -> bool {
        matches!(self, RrcState::Active | RrcState::Tail)
    }
}

/// Timing of the RRC machine. Powers live in the energy crate's device
/// profiles; this is pure protocol timing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RrcConfig {
    /// Time from idle to connected once traffic wants to flow.
    pub promotion_delay: SimDuration,
    /// Inactivity period after the last packet before the radio enters the
    /// tail proper (connected-DRX style); kept small.
    pub inactivity_timeout: SimDuration,
    /// How long the high-power tail lasts before demotion to idle,
    /// measured from tail entry. The paper cites 6–12 s.
    pub tail_duration: SimDuration,
}

impl RrcConfig {
    /// LTE timing in the range measured by Huang et al. (MobiSys'12).
    pub fn lte() -> Self {
        RrcConfig {
            promotion_delay: SimDuration::from_millis(400),
            inactivity_timeout: SimDuration::from_millis(100),
            tail_duration: SimDuration::from_millis(10_500),
        }
    }

    /// 3G (HSPA) timing per Balasubramanian et al. (IMC'09).
    pub fn threeg() -> Self {
        RrcConfig {
            promotion_delay: SimDuration::from_millis(1_000),
            inactivity_timeout: SimDuration::from_millis(200),
            tail_duration: SimDuration::from_millis(8_100),
        }
    }
}

/// A state transition the machine performed, reported so the host can
/// account energy and release blocked traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RrcTransition {
    /// When the transition happened.
    pub at: SimTime,
    /// The state entered.
    pub to: RrcState,
}

/// The RRC state machine for one cellular interface.
#[derive(Clone, Debug)]
pub struct RrcMachine {
    config: RrcConfig,
    state: RrcState,
    /// When the current promotion completes (valid in `Promotion`).
    promotion_end: SimTime,
    /// Last time data moved (valid in `Active`/`Tail`).
    last_activity: SimTime,
    /// When the tail expires (valid in `Tail`).
    tail_end: SimTime,
    /// Cumulative number of promotions performed (each one costs fixed
    /// energy; the evaluation counts them).
    promotions: u64,
    /// Accumulated time spent in each state (indexed by
    /// [`RrcState::index`]), up to `state_entered_at`'s last update.
    residency_ns: [u64; 4],
    /// When the current state was entered; tracking starts at
    /// [`SimTime::ZERO`] (machines are created at simulation start).
    state_entered_at: SimTime,
    /// Telemetry scope for transition events and the promotions counter.
    scope: TelemetryScope,
}

impl RrcMachine {
    /// A machine starting idle.
    pub fn new(config: RrcConfig) -> Self {
        RrcMachine {
            config,
            state: RrcState::Idle,
            promotion_end: SimTime::ZERO,
            last_activity: SimTime::ZERO,
            tail_end: SimTime::ZERO,
            promotions: 0,
            residency_ns: [0; 4],
            state_entered_at: SimTime::ZERO,
            scope: TelemetryScope::disabled(),
        }
    }

    /// Attach a telemetry scope; transitions emit
    /// [`TraceEvent::RrcTransition`] and promotions are counted.
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    /// Switch to `to` at time `at`, closing out the residency of the state
    /// being left and reporting the transition.
    fn transition(&mut self, at: SimTime, to: RrcState, out: &mut Vec<RrcTransition>) {
        let from = self.state;
        self.residency_ns[from.index()] += at.saturating_since(self.state_entered_at).as_nanos();
        self.state_entered_at = at;
        self.state = to;
        self.scope.emit(at, |_| TraceEvent::RrcTransition {
            from: from.name(),
            to: to.name(),
        });
        if to == RrcState::Promotion {
            self.scope
                .with_metrics(|_, m| m.counter_add("rrc.promotions", 1));
        }
        out.push(RrcTransition { at, to });
    }

    /// Time spent in `state` through `now` (including the currently running
    /// stint when `state` is the current state).
    pub fn residency_ns(&self, state: RrcState, now: SimTime) -> u64 {
        let mut ns = self.residency_ns[state.index()];
        if state == self.state {
            ns += now.saturating_since(self.state_entered_at).as_nanos();
        }
        ns
    }

    /// Sum of all state residencies through `now`. Tracking starts at
    /// [`SimTime::ZERO`], so this must equal `now.as_nanos()` — the
    /// `residency_sum` invariant.
    pub fn residency_sum_ns(&self, now: SimTime) -> u64 {
        RrcState::ALL
            .iter()
            .map(|&s| self.residency_ns(s, now))
            .sum()
    }

    /// Current state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// The machine's timing configuration.
    pub fn config(&self) -> &RrcConfig {
        &self.config
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Data wants to flow (a packet was sent or received, or a subflow is
    /// being established). Returns the transitions performed, if any, and
    /// the time at which the data can actually flow (promotion may delay it).
    /// Due timers are fired first, so the result is correct even if the
    /// caller has not polled recently.
    pub fn on_activity(&mut self, now: SimTime) -> (Vec<RrcTransition>, SimTime) {
        let mut transitions = self.poll(now);
        match self.state {
            RrcState::Idle => {
                self.promotion_end = now + self.config.promotion_delay;
                self.promotions += 1;
                self.transition(now, RrcState::Promotion, &mut transitions);
                (transitions, self.promotion_end)
            }
            RrcState::Promotion => (transitions, self.promotion_end),
            RrcState::Active => {
                self.last_activity = now;
                (transitions, now)
            }
            RrcState::Tail => {
                // Data during the tail reactivates without promotion cost.
                self.last_activity = now;
                self.transition(now, RrcState::Active, &mut transitions);
                (transitions, now)
            }
        }
    }

    /// The next time at which [`poll`](Self::poll) could change state, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match self.state {
            RrcState::Idle => None,
            RrcState::Promotion => Some(self.promotion_end),
            RrcState::Active => Some(self.last_activity + self.config.inactivity_timeout),
            RrcState::Tail => Some(self.tail_end),
        }
    }

    /// Advance timers to `now`, performing any due transitions in order.
    pub fn poll(&mut self, now: SimTime) -> Vec<RrcTransition> {
        let mut transitions = Vec::new();
        loop {
            match self.state {
                RrcState::Promotion if now >= self.promotion_end => {
                    self.last_activity = self.promotion_end;
                    let at = self.promotion_end;
                    self.transition(at, RrcState::Active, &mut transitions);
                }
                RrcState::Active if now >= self.last_activity + self.config.inactivity_timeout => {
                    let tail_start = self.last_activity + self.config.inactivity_timeout;
                    self.tail_end = tail_start + self.config.tail_duration;
                    self.transition(tail_start, RrcState::Tail, &mut transitions);
                }
                RrcState::Tail if now >= self.tail_end => {
                    let at = self.tail_end;
                    self.transition(at, RrcState::Idle, &mut transitions);
                }
                _ => break,
            }
        }
        transitions
    }

    /// Convenience: the fixed energy window (promotion + tail) in seconds for
    /// a one-shot transfer, used when reporting Fig 1.
    pub fn fixed_window_secs(&self) -> (f64, f64) {
        (
            self.config.promotion_delay.as_secs_f64(),
            self.config.tail_duration.as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    fn machine() -> RrcMachine {
        RrcMachine::new(RrcConfig {
            promotion_delay: SimDuration::from_millis(400),
            inactivity_timeout: SimDuration::from_millis(100),
            tail_duration: SimDuration::from_secs(10),
        })
    }

    #[test]
    fn idle_to_promotion_to_active() {
        let mut m = machine();
        assert_eq!(m.state(), RrcState::Idle);
        assert_eq!(m.next_deadline(), None);

        let (tr, ready) = m.on_activity(s(1));
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].to, RrcState::Promotion);
        assert_eq!(ready, s(1) + SimDuration::from_millis(400));
        assert_eq!(m.promotions(), 1);

        // Poll before the promotion ends: nothing happens.
        assert!(m.poll(s(1) + SimDuration::from_millis(100)).is_empty());
        assert_eq!(m.state(), RrcState::Promotion);

        let tr = m.poll(ready);
        assert_eq!(
            tr,
            vec![RrcTransition {
                at: ready,
                to: RrcState::Active
            }]
        );
        assert_eq!(m.state(), RrcState::Active);
    }

    #[test]
    fn activity_during_promotion_does_not_restart_it() {
        let mut m = machine();
        let (_, ready1) = m.on_activity(s(1));
        let (tr, ready2) = m.on_activity(s(1) + SimDuration::from_millis(50));
        assert!(tr.is_empty());
        assert_eq!(ready1, ready2);
        assert_eq!(m.promotions(), 1);
    }

    #[test]
    fn inactivity_enters_tail_then_idle() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(0));
        m.poll(ready); // Active at 0.4 s
                       // No further activity: tail starts at 0.5 s, idle at 10.5 s.
        let tr = m.poll(s(20));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].to, RrcState::Tail);
        assert_eq!(tr[0].at, SimTime::from_millis(500));
        assert_eq!(tr[1].to, RrcState::Idle);
        assert_eq!(tr[1].at, SimTime::from_millis(10_500));
        assert_eq!(m.state(), RrcState::Idle);
    }

    #[test]
    fn activity_in_tail_reactivates_without_promotion() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(0));
        m.poll(ready);
        m.poll(s(1)); // now in Tail (entered at 0.5 s)
        assert_eq!(m.state(), RrcState::Tail);
        let (tr, ready) = m.on_activity(s(1));
        assert_eq!(tr[0].to, RrcState::Active);
        assert_eq!(ready, s(1)); // immediate, no promotion
        assert_eq!(m.promotions(), 1);
    }

    #[test]
    fn ongoing_activity_keeps_active() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(0));
        m.poll(ready);
        for ms in (450..5_000).step_by(50) {
            let t = SimTime::from_millis(ms);
            assert!(m.poll(t).is_empty(), "unexpected transition at {t}");
            m.on_activity(t);
        }
        assert_eq!(m.state(), RrcState::Active);
        assert_eq!(m.promotions(), 1);
    }

    #[test]
    fn full_cycle_costs_second_promotion() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(0));
        m.poll(ready);
        m.poll(s(30)); // all the way back to idle
        let (tr, _) = m.on_activity(s(30));
        assert_eq!(tr[0].to, RrcState::Promotion);
        assert_eq!(m.promotions(), 2);
    }

    #[test]
    fn state_predicates() {
        assert!(!RrcState::Idle.is_high_power());
        assert!(RrcState::Promotion.is_high_power());
        assert!(RrcState::Tail.is_high_power());
        assert!(!RrcState::Promotion.can_transfer());
        assert!(RrcState::Active.can_transfer());
        assert!(RrcState::Tail.can_transfer());
    }

    #[test]
    fn residencies_partition_elapsed_time() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(1));
        m.poll(ready);
        m.poll(s(30)); // through the tail, back to idle
        let now = s(40);
        assert_eq!(m.residency_sum_ns(now), now.as_nanos());
        assert_eq!(
            m.residency_ns(RrcState::Promotion, now),
            SimDuration::from_millis(400).as_nanos()
        );
        assert_eq!(
            m.residency_ns(RrcState::Tail, now),
            SimDuration::from_secs(10).as_nanos()
        );
    }

    #[test]
    fn deadlines_track_state() {
        let mut m = machine();
        let (_, ready) = m.on_activity(s(2));
        assert_eq!(m.next_deadline(), Some(ready));
        m.poll(ready);
        assert_eq!(
            m.next_deadline(),
            Some(ready + SimDuration::from_millis(100))
        );
    }
}
