//! Two-state Markov on-off processes.
//!
//! The controlled-lab evaluation uses these twice:
//!
//! * §4.3 modulates the AP's link bandwidth between a low state (≤ 1 Mbps)
//!   and a high state (≥ 10 Mbps) with exponentially distributed holding
//!   times of mean 40 s;
//! * §4.4 turns each interfering WiFi node's UDP traffic on and off with
//!   rates λ_on = 0.05 (mean 20 s bursts) and λ_off ∈ {0.025, 0.05}.
//!
//! Holding times are exponential with the rate of the *current* state, i.e.
//! the process stays On for `Exp(rate_on)` then Off for `Exp(rate_off)`.

use emptcp_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// State of an on-off process.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OnOff {
    /// The "on" state (traffic flowing / high bandwidth).
    On,
    /// The "off" state.
    Off,
}

impl OnOff {
    /// The other state.
    pub fn flipped(self) -> OnOff {
        match self {
            OnOff::On => OnOff::Off,
            OnOff::Off => OnOff::On,
        }
    }
}

/// A two-state process with exponential holding times, advanced lazily.
#[derive(Clone, Debug)]
pub struct OnOffProcess {
    state: OnOff,
    /// Mean-1/rate exponential holding rate while On.
    rate_on: f64,
    /// Holding rate while Off.
    rate_off: f64,
    next_toggle: SimTime,
    rng: SimRng,
    toggles: u64,
}

impl OnOffProcess {
    /// Create a process in `initial` state at time `start`; the first
    /// holding time is drawn immediately.
    pub fn new(
        start: SimTime,
        initial: OnOff,
        rate_on: f64,
        rate_off: f64,
        mut rng: SimRng,
    ) -> Self {
        assert!(rate_on > 0.0 && rate_off > 0.0, "rates must be positive");
        let rate = match initial {
            OnOff::On => rate_on,
            OnOff::Off => rate_off,
        };
        let next_toggle = start + rng.exponential_duration(rate);
        OnOffProcess {
            state: initial,
            rate_on,
            rate_off,
            next_toggle,
            rng,
            toggles: 0,
        }
    }

    /// Current state (without advancing).
    pub fn state(&self) -> OnOff {
        self.state
    }

    /// When the next toggle is due.
    pub fn next_toggle(&self) -> SimTime {
        self.next_toggle
    }

    /// Number of toggles performed so far.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Advance to `now`, flipping through any due toggles; returns `true`
    /// if the observable state changed since the last call.
    pub fn poll(&mut self, now: SimTime) -> bool {
        let before = self.state;
        while self.next_toggle <= now {
            self.state = self.state.flipped();
            self.toggles += 1;
            let rate = match self.state {
                OnOff::On => self.rate_on,
                OnOff::Off => self.rate_off,
            };
            let hold = self.rng.exponential_duration(rate);
            self.next_toggle += hold;
        }
        self.state != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimDuration;

    #[test]
    fn starts_in_initial_state() {
        let p = OnOffProcess::new(SimTime::ZERO, OnOff::Off, 0.05, 0.025, SimRng::new(1));
        assert_eq!(p.state(), OnOff::Off);
        assert!(p.next_toggle() > SimTime::ZERO);
    }

    #[test]
    fn poll_before_toggle_is_noop() {
        let mut p = OnOffProcess::new(SimTime::ZERO, OnOff::On, 1.0, 1.0, SimRng::new(2));
        let t = p.next_toggle();
        assert!(!p.poll(t.checked_sub(SimDuration::from_nanos(1)).unwrap()));
        assert_eq!(p.state(), OnOff::On);
    }

    #[test]
    fn poll_through_single_toggle() {
        let mut p = OnOffProcess::new(SimTime::ZERO, OnOff::On, 1.0, 1.0, SimRng::new(3));
        let t = p.next_toggle();
        assert!(p.poll(t));
        assert_eq!(p.state(), OnOff::Off);
        assert_eq!(p.toggles(), 1);
        assert!(p.next_toggle() > t);
    }

    #[test]
    fn poll_through_many_toggles_lands_on_parity() {
        let mut p = OnOffProcess::new(SimTime::ZERO, OnOff::On, 10.0, 10.0, SimRng::new(4));
        p.poll(SimTime::from_secs(1000));
        let expected = if p.toggles().is_multiple_of(2) {
            OnOff::On
        } else {
            OnOff::Off
        };
        assert_eq!(p.state(), expected);
        assert!(p.toggles() > 5000, "got {}", p.toggles());
    }

    #[test]
    fn mean_holding_times_match_rates() {
        // lambda_on = 0.05 (mean 20 s on), lambda_off = 0.025 (mean 40 s off):
        // fraction of time On should approach 20 / (20 + 40) = 1/3.
        let mut p = OnOffProcess::new(SimTime::ZERO, OnOff::Off, 0.05, 0.025, SimRng::new(5));
        let horizon = SimTime::from_secs(2_000_000);
        let step = SimDuration::from_secs(7);
        let mut t = SimTime::ZERO;
        let (mut on, mut total) = (0u64, 0u64);
        while t < horizon {
            p.poll(t);
            if p.state() == OnOff::On {
                on += 1;
            }
            total += 1;
            t += step;
        }
        let frac = on as f64 / total as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.01, "on-fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = OnOffProcess::new(SimTime::ZERO, OnOff::On, 0.05, 0.05, SimRng::new(9));
        let mut b = OnOffProcess::new(SimTime::ZERO, OnOff::On, 0.05, 0.05, SimRng::new(9));
        for s in (0..10_000).step_by(13) {
            let t = SimTime::from_secs(s);
            a.poll(t);
            b.poll(t);
            assert_eq!(a.state(), b.state());
            assert_eq!(a.next_toggle(), b.next_toggle());
        }
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_rejected() {
        OnOffProcess::new(SimTime::ZERO, OnOff::On, 0.0, 1.0, SimRng::new(1));
    }
}
