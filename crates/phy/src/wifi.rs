//! WiFi channel model: AP capacity, DCF-style contention, association.
//!
//! The paper's §4.4 adds `n ∈ {2, 3}` interfering stations on the same
//! channel, each blasting UDP according to an on-off process. Contention has
//! two observable effects on the measured device: its share of airtime
//! shrinks (roughly `1/(k+1)` for `k` active contenders, further discounted
//! by collision overhead) and its loss rate grows with the number of
//! contenders. Both feed straight into the WiFi [`Link`](crate::link::Link).
//!
//! The channel is a pure calculator — hosts push [`WifiChannel::effective_rate_bps`]
//! and [`WifiChannel::loss_prob`] into the link whenever an input changes.

use serde::{Deserialize, Serialize};

/// Tunables of the contention model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WifiContentionConfig {
    /// Loss probability with an idle channel (clean 802.11g link).
    pub base_loss: f64,
    /// Additional loss probability per active contender (collisions).
    pub loss_per_contender: f64,
    /// Fraction of airtime lost to backoff/collisions per active contender;
    /// the effective share is `1 / (k+1) / (1 + overhead * k)`.
    pub collision_overhead: f64,
}

impl Default for WifiContentionConfig {
    fn default() -> Self {
        WifiContentionConfig {
            base_loss: 0.0005,
            loss_per_contender: 0.008,
            collision_overhead: 0.10,
        }
    }
}

/// The WiFi channel between the device and its AP.
#[derive(Clone, Debug)]
pub struct WifiChannel {
    /// Deliverable goodput from AP to device with an idle channel, bps.
    nominal_bps: u64,
    /// Active interfering stations right now.
    active_contenders: u32,
    /// Whether the device is associated with the AP at all. Losing
    /// association is what triggers "WiFi-First" style fallbacks; merely
    /// being far away degrades `nominal_bps` instead.
    associated: bool,
    config: WifiContentionConfig,
}

impl WifiChannel {
    /// An associated channel with the given idle-air goodput.
    pub fn new(nominal_bps: u64) -> Self {
        WifiChannel {
            nominal_bps,
            active_contenders: 0,
            associated: true,
            config: WifiContentionConfig::default(),
        }
    }

    /// Replace the contention tunables.
    pub fn with_contention(mut self, config: WifiContentionConfig) -> Self {
        self.config = config;
        self
    }

    /// Idle-air goodput currently offered by the AP.
    pub fn nominal_bps(&self) -> u64 {
        self.nominal_bps
    }

    /// Set the idle-air goodput (bandwidth modulation, mobility).
    pub fn set_nominal_bps(&mut self, bps: u64) {
        self.nominal_bps = bps;
    }

    /// Set the number of currently active interfering stations.
    pub fn set_active_contenders(&mut self, k: u32) {
        self.active_contenders = k;
    }

    /// Active interfering stations.
    pub fn active_contenders(&self) -> u32 {
        self.active_contenders
    }

    /// Associate / disassociate with the AP.
    pub fn set_associated(&mut self, associated: bool) {
        self.associated = associated;
    }

    /// Whether the device currently holds an AP association.
    pub fn associated(&self) -> bool {
        self.associated
    }

    /// The device's share of goodput under current contention.
    pub fn effective_rate_bps(&self) -> u64 {
        if !self.associated {
            return 0;
        }
        let k = self.active_contenders as f64;
        let share = 1.0 / (k + 1.0) / (1.0 + self.config.collision_overhead * k);
        (self.nominal_bps as f64 * share) as u64
    }

    /// Loss probability under current contention.
    pub fn loss_prob(&self) -> f64 {
        if !self.associated {
            return 1.0;
        }
        (self.config.base_loss + self.config.loss_per_contender * self.active_contenders as f64)
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_full_rate() {
        let ch = WifiChannel::new(10_000_000);
        assert_eq!(ch.effective_rate_bps(), 10_000_000);
        assert!(ch.loss_prob() < 0.001);
    }

    #[test]
    fn contention_shrinks_share_monotonically() {
        let mut ch = WifiChannel::new(12_000_000);
        let mut last = u64::MAX;
        for k in 0..5 {
            ch.set_active_contenders(k);
            let r = ch.effective_rate_bps();
            assert!(r < last, "rate must strictly decrease with contenders");
            last = r;
        }
        // Two contenders: share < 1/3 of nominal due to collision overhead.
        ch.set_active_contenders(2);
        assert!(ch.effective_rate_bps() < 12_000_000 / 3);
    }

    #[test]
    fn contention_raises_loss() {
        let mut ch = WifiChannel::new(10_000_000);
        let p0 = ch.loss_prob();
        ch.set_active_contenders(3);
        let p3 = ch.loss_prob();
        assert!(p3 > p0);
        assert!((p3 - (0.0005 + 3.0 * 0.008)).abs() < 1e-12);
    }

    #[test]
    fn disassociation_kills_the_channel() {
        let mut ch = WifiChannel::new(10_000_000);
        ch.set_associated(false);
        assert_eq!(ch.effective_rate_bps(), 0);
        assert_eq!(ch.loss_prob(), 1.0);
        ch.set_associated(true);
        assert_eq!(ch.effective_rate_bps(), 10_000_000);
    }

    #[test]
    fn loss_probability_clamped() {
        let mut ch = WifiChannel::new(1_000_000).with_contention(WifiContentionConfig {
            base_loss: 0.5,
            loss_per_contender: 0.4,
            collision_overhead: 0.1,
        });
        ch.set_active_contenders(10);
        assert_eq!(ch.loss_prob(), 1.0);
    }
}
