//! A bidirectional end-to-end path between the mobile device and a server.
//!
//! Each MPTCP subflow rides one `Path`: the **down** link models the
//! bottleneck wireless hop plus internet path toward the device, the **up**
//! link carries requests and ACKs (never the bottleneck in the paper's
//! download-dominated workloads, but still rate-limited and delayed so
//! ACK-clocking behaves).

use crate::iface::IfaceKind;
use crate::link::{EnqueueOutcome, Link, LinkConfig};
use emptcp_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Direction of travel on a path, seen from the mobile device.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Server → device.
    Down,
    /// Device → server.
    Up,
}

/// Configuration of a path.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PathConfig {
    /// Radio kind the device-side interface uses.
    pub iface: IfaceKind,
    /// Downlink (bottleneck) configuration.
    pub down: LinkConfig,
    /// Uplink configuration.
    pub up: LinkConfig,
}

impl PathConfig {
    /// A WiFi path: the downlink bottleneck is the AP's deliverable goodput,
    /// `rtt` is the full base round-trip to the server.
    pub fn wifi(down_bps: u64, rtt: SimDuration) -> Self {
        PathConfig {
            iface: IfaceKind::Wifi,
            down: LinkConfig {
                rate_bps: down_bps,
                prop_delay: rtt / 2,
                queue_capacity: 128 * 1024,
                loss_prob: 0.0005,
            },
            up: LinkConfig {
                rate_bps: down_bps.max(10_000_000),
                prop_delay: rtt / 2,
                queue_capacity: 256 * 1024,
                loss_prob: 0.0,
            },
        }
    }

    /// A cellular path (3G or LTE) with the given downlink capacity and base
    /// RTT. Cellular queues are deeper (carrier buffers).
    pub fn cellular(kind: IfaceKind, down_bps: u64, rtt: SimDuration) -> Self {
        assert!(kind.is_cellular(), "cellular path needs a cellular kind");
        PathConfig {
            iface: kind,
            down: LinkConfig {
                rate_bps: down_bps,
                prop_delay: rtt / 2,
                queue_capacity: 256 * 1024,
                loss_prob: 0.0002,
            },
            up: LinkConfig {
                rate_bps: down_bps.max(5_000_000),
                prop_delay: rtt / 2,
                queue_capacity: 256 * 1024,
                loss_prob: 0.0,
            },
        }
    }
}

/// A live path: two links plus identity.
#[derive(Clone, Debug)]
pub struct Path {
    /// Radio kind of the device-side interface.
    pub iface: IfaceKind,
    down: Link,
    up: Link,
}

impl Path {
    /// Instantiate the links from a config.
    pub fn new(config: PathConfig) -> Self {
        Path {
            iface: config.iface,
            down: Link::new(config.down),
            up: Link::new(config.up),
        }
    }

    /// Offer a packet to the given direction.
    pub fn enqueue(
        &mut self,
        dir: Direction,
        now: SimTime,
        wire_bytes: u64,
        rng: &mut SimRng,
    ) -> EnqueueOutcome {
        match dir {
            Direction::Down => self.down.enqueue(now, wire_bytes, rng),
            Direction::Up => self.up.enqueue(now, wire_bytes, rng),
        }
    }

    /// The downlink, for rate/loss updates from channel models.
    pub fn down_mut(&mut self) -> &mut Link {
        &mut self.down
    }

    /// The downlink, read-only.
    pub fn down(&self) -> &Link {
        &self.down
    }

    /// The uplink.
    pub fn up_mut(&mut self) -> &mut Link {
        &mut self.up
    }

    /// The uplink, read-only.
    pub fn up(&self) -> &Link {
        &self.up
    }

    /// Base round-trip time implied by the two propagation delays.
    pub fn base_rtt(&self) -> SimDuration {
        self.down.prop_delay() + self.up.prop_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_path_construction() {
        let p = Path::new(PathConfig::wifi(10_000_000, SimDuration::from_millis(30)));
        assert_eq!(p.iface, IfaceKind::Wifi);
        assert_eq!(p.base_rtt(), SimDuration::from_millis(30));
        assert_eq!(p.down().rate_bps(), 10_000_000);
    }

    #[test]
    fn cellular_path_construction() {
        let p = Path::new(PathConfig::cellular(
            IfaceKind::CellularLte,
            20_000_000,
            SimDuration::from_millis(60),
        ));
        assert_eq!(p.iface, IfaceKind::CellularLte);
        assert!(p.up().rate_bps() >= 5_000_000);
    }

    #[test]
    #[should_panic(expected = "cellular path needs a cellular kind")]
    fn cellular_rejects_wifi_kind() {
        PathConfig::cellular(IfaceKind::Wifi, 1, SimDuration::ZERO);
    }

    #[test]
    fn directions_are_independent() {
        let mut p = Path::new(PathConfig::wifi(10_000_000, SimDuration::from_millis(20)));
        let mut rng = SimRng::new(1);
        let down = p.enqueue(Direction::Down, SimTime::ZERO, 1500, &mut rng);
        let up = p.enqueue(Direction::Up, SimTime::ZERO, 66, &mut rng);
        assert!(matches!(down, EnqueueOutcome::Delivered(_)));
        assert!(matches!(up, EnqueueOutcome::Delivered(_)));
        assert_eq!(p.down().delivered_packets(), 1);
        assert_eq!(p.up().delivered_packets(), 1);
    }
}
