#![warn(missing_docs)]
//! Wireless channel models for the eMPTCP reproduction.
//!
//! The paper's evaluation runs over a campus 802.11g access point and AT&T
//! 3G/LTE. This crate provides the simulated equivalents:
//!
//! * [`iface`] — interface identities and kinds (WiFi / 3G / LTE),
//! * [`rrc`] — the 3GPP radio-resource-control state machine with the
//!   promotion and tail states whose fixed energy costs motivate eMPTCP's
//!   delayed subflow establishment (§2.3 of the paper),
//! * [`link`] — a rate-limited, queueing, lossy point-to-point pipe,
//! * [`wifi`] — a DCF-inspired contention model for `n` interfering
//!   stations sharing the AP (§4.4),
//! * [`modulation`] — the two-state exponential on-off processes used to
//!   modulate AP bandwidth (§4.3) and interferer activity (§4.4),
//! * [`mobility`] — waypoint routes, log-distance path loss and 802.11g
//!   rate adaptation for the mobile scenario (§4.5),
//! * [`path`] — a bidirectional end-to-end path (client ↔ server) built
//!   from two links plus the owning radio.

pub mod iface;
pub mod link;
pub mod mobility;
pub mod modulation;
pub mod path;
pub mod rrc;
pub mod wifi;

pub use iface::{IfaceId, IfaceKind};
pub use link::{GeParams, Link, LinkConfig, LossModel, LossProcess};
pub use modulation::OnOffProcess;
pub use path::{Path, PathConfig};
pub use rrc::{RrcConfig, RrcMachine, RrcState};
pub use wifi::WifiChannel;
