//! Network-interface identities.
//!
//! The paper's devices expose a WiFi interface and one cellular interface
//! (3G or LTE). Subflows are bound to interfaces; the energy model, the
//! bandwidth predictor and the path usage controller are all indexed per
//! interface kind — exactly what the kernel implementation recovers by
//! following `dst_entry → net_device → ieee80211_ptr` (§3.6).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of radio behind an interface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IfaceKind {
    /// IEEE 802.11 WLAN.
    Wifi,
    /// 3G (HSPA-era) cellular.
    Cellular3g,
    /// 4G LTE cellular.
    CellularLte,
}

impl IfaceKind {
    /// True for either cellular kind; cellular interfaces carry the
    /// promotion/tail fixed costs that eMPTCP avoids.
    pub fn is_cellular(self) -> bool {
        matches!(self, IfaceKind::Cellular3g | IfaceKind::CellularLte)
    }

    /// Short label used in traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            IfaceKind::Wifi => "WiFi",
            IfaceKind::Cellular3g => "3G",
            IfaceKind::CellularLte => "LTE",
        }
    }
}

impl fmt::Display for IfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Index of an interface on a host. The mobile hosts in this reproduction
/// have interface 0 = WiFi and interface 1 = cellular, mirroring the paper's
/// two-interface phones.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IfaceId(pub u8);

impl IfaceId {
    /// The conventional WiFi interface index.
    pub const WIFI: IfaceId = IfaceId(0);
    /// The conventional cellular interface index.
    pub const CELLULAR: IfaceId = IfaceId(1);
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cellular_classification() {
        assert!(!IfaceKind::Wifi.is_cellular());
        assert!(IfaceKind::Cellular3g.is_cellular());
        assert!(IfaceKind::CellularLte.is_cellular());
    }

    #[test]
    fn labels() {
        assert_eq!(IfaceKind::Wifi.to_string(), "WiFi");
        assert_eq!(IfaceKind::CellularLte.to_string(), "LTE");
        assert_eq!(IfaceId::WIFI.to_string(), "if0");
    }

    #[test]
    fn conventional_indices_distinct() {
        assert_ne!(IfaceId::WIFI, IfaceId::CELLULAR);
    }
}
