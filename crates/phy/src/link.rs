//! A rate-limited, queueing, lossy point-to-point link.
//!
//! Each direction of a network path is one `Link`: packets are serialized at
//! the link's current rate behind a drop-tail queue, then experience the
//! propagation delay. Random (wireless) loss is applied on entry, congestion
//! loss comes from the finite queue — which is what makes the TCP models
//! upstairs regulate themselves realistically.
//!
//! The link is poll-less: [`Link::enqueue`] immediately returns the delivery
//! time (or the drop), and the host schedules the arrival event. A rate
//! change re-serializes the queued backlog at the new rate from the change
//! instant, so queue occupancy (and therefore drop-tail behaviour) always
//! reflects the current rate; delivery times already handed out for
//! committed packets are unaffected.
//!
//! Loss is a pluggable [`LossModel`]: the classic i.i.d. Bernoulli channel,
//! or a Gilbert–Elliott two-state chain whose bad state produces the
//! correlated burst losses real radios exhibit during fades.

use emptcp_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of a link.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Drop-tail queue capacity in bytes (wire bytes awaiting serialization).
    pub queue_capacity: u64,
    /// Probability that an entering packet is lost to the channel
    /// (independent of queue state).
    pub loss_prob: f64,
}

impl LinkConfig {
    /// A generous wired backbone hop: used for the server's Ethernet side
    /// and for ACK-carrying reverse channels that are never the bottleneck.
    pub fn backbone(prop_delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay,
            queue_capacity: 4 * 1024 * 1024,
            loss_prob: 0.0,
        }
    }
}

/// Parameters of the Gilbert–Elliott two-state burst-loss channel. All
/// probabilities are per offered packet: the chain first takes one
/// transition step, then the packet is lost with the loss probability of
/// the state it landed in.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct GeParams {
    /// P(good -> bad) per packet.
    pub p_good_to_bad: f64,
    /// P(bad -> good) per packet.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// Mean number of packets spent in the bad state per visit.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_bad_to_good.max(f64::MIN_POSITIVE)
    }

    /// Long-run marginal loss probability of the chain.
    pub fn steady_state_loss(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom <= 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_good_to_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// How a link loses packets to the channel (independent of queue state).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum LossModel {
    /// Independent loss with a fixed probability (the historical model).
    Bernoulli(f64),
    /// Two-state burst loss: long good stretches punctuated by short bad
    /// bursts where most packets die, as produced by fades and contention.
    GilbertElliott(GeParams),
}

impl LossModel {
    /// A loss-free channel.
    pub fn loss_free() -> Self {
        LossModel::Bernoulli(0.0)
    }
}

/// A [`LossModel`] plus its channel state. Shared by [`Link`] and by the
/// test rigs in `emptcp-faults`, so burst-loss semantics are identical in
/// both places.
#[derive(Clone, Debug)]
pub struct LossProcess {
    model: LossModel,
    in_bad: bool,
}

impl LossProcess {
    /// A process starting in the good state.
    pub fn new(model: LossModel) -> Self {
        LossProcess {
            model,
            in_bad: false,
        }
    }

    /// The configured model.
    pub fn model(&self) -> LossModel {
        self.model
    }

    /// Replace the model; the burst state restarts in "good".
    pub fn set_model(&mut self, model: LossModel) {
        self.model = model;
        self.in_bad = false;
    }

    /// Loss probability the *next* packet would face before its transition
    /// step (for gauges and diagnostics).
    pub fn instantaneous_loss(&self) -> f64 {
        match self.model {
            LossModel::Bernoulli(p) => p,
            LossModel::GilbertElliott(g) => {
                if self.in_bad {
                    g.loss_bad
                } else {
                    g.loss_good
                }
            }
        }
    }

    /// Offer one packet: advance the chain, return whether it is lost.
    /// A `Bernoulli(0.0)` model consumes no randomness, preserving the
    /// historical stream positions of loss-free links.
    pub fn lost(&mut self, rng: &mut SimRng) -> bool {
        match self.model {
            LossModel::Bernoulli(p) => p > 0.0 && rng.chance(p),
            LossModel::GilbertElliott(g) => {
                let flip = if self.in_bad {
                    g.p_bad_to_good
                } else {
                    g.p_good_to_bad
                };
                if rng.chance(flip) {
                    self.in_bad = !self.in_bad;
                }
                let p = if self.in_bad { g.loss_bad } else { g.loss_good };
                p > 0.0 && rng.chance(p)
            }
        }
    }
}

/// Why a packet failed to enter the link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Lost to random channel error.
    Channel,
    /// Tail-dropped by the full queue.
    QueueFull,
    /// The link is administratively down (zero rate / out of range).
    LinkDown,
}

/// Result of offering a packet to the link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueOutcome {
    /// Accepted; the packet arrives at the far end at this time.
    Delivered(SimTime),
    /// Dropped.
    Dropped(DropReason),
}

/// One direction of a point-to-point pipe.
#[derive(Clone, Debug)]
pub struct Link {
    rate_bps: u64,
    prop_delay: SimDuration,
    queue_capacity: u64,
    loss: LossProcess,
    /// When the serializer frees up.
    busy_until: SimTime,
    /// Wire bytes whose serialization completes in the future, for backlog
    /// accounting: `(serialization_end, bytes)`.
    backlog: VecDeque<(SimTime, u64)>,
    backlog_bytes: u64,
    /// Counters for diagnostics and tests.
    delivered_packets: u64,
    dropped_channel: u64,
    dropped_queue: u64,
}

impl Link {
    /// A link with the given configuration, idle at time zero.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            rate_bps: config.rate_bps,
            prop_delay: config.prop_delay,
            queue_capacity: config.queue_capacity,
            loss: LossProcess::new(LossModel::Bernoulli(config.loss_prob)),
            busy_until: SimTime::ZERO,
            backlog: VecDeque::new(),
            backlog_bytes: 0,
            delivered_packets: 0,
            dropped_channel: 0,
            dropped_queue: 0,
        }
    }

    /// Current serialization rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the serialization rate (bandwidth modulation, contention,
    /// mobility, fault injection). Zero means the link is down.
    ///
    /// The still-queued backlog is re-serialized at the new rate starting at
    /// `now`: without this, a rate collapse would leave serialization-end
    /// times computed at the old (fast) rate — or, worse, a later rate
    /// *recovery* would leave far-future end times computed at the collapsed
    /// rate, permanently stranding the queue at full occupancy so every new
    /// packet tail-drops. Delivery times already returned for committed
    /// packets are unaffected; only queue accounting is rewritten.
    pub fn set_rate_bps(&mut self, now: SimTime, rate_bps: u64) {
        if rate_bps == self.rate_bps {
            return;
        }
        self.rate_bps = rate_bps;
        self.backlog_bytes(now); // drop the already-serialized prefix
        if rate_bps == 0 {
            // Down: new packets are refused before touching the serializer;
            // packets already committed keep their old drain schedule.
            return;
        }
        let mut cursor = now;
        for entry in self.backlog.iter_mut() {
            cursor += SimDuration::transmission(entry.1, rate_bps);
            entry.0 = cursor;
        }
        self.busy_until = cursor;
    }

    /// Change the random loss probability (contention raises it). This
    /// installs an i.i.d. [`LossModel::Bernoulli`] channel, replacing any
    /// burst-loss model.
    pub fn set_loss_prob(&mut self, p: f64) {
        self.loss.set_model(LossModel::Bernoulli(p.clamp(0.0, 1.0)));
    }

    /// Install an arbitrary loss model (fault injection uses this to toggle
    /// Gilbert–Elliott burst loss). The burst state restarts in "good".
    pub fn set_loss_model(&mut self, model: LossModel) {
        self.loss.set_model(model);
    }

    /// The configured loss model.
    pub fn loss_model(&self) -> LossModel {
        self.loss.model()
    }

    /// Loss probability the next packet would face in the current channel
    /// state (the fixed `p` for Bernoulli, the state-dependent one for
    /// Gilbert–Elliott).
    pub fn loss_prob(&self) -> f64 {
        self.loss.instantaneous_loss()
    }

    /// One-way propagation delay.
    pub fn prop_delay(&self) -> SimDuration {
        self.prop_delay
    }

    /// Drop-tail queue capacity in bytes.
    pub fn queue_capacity(&self) -> u64 {
        self.queue_capacity
    }

    /// Change the propagation delay (e.g. a different server location).
    pub fn set_prop_delay(&mut self, d: SimDuration) {
        self.prop_delay = d;
    }

    /// Bytes queued ahead of a packet arriving at `now`.
    pub fn backlog_bytes(&mut self, now: SimTime) -> u64 {
        while let Some(&(end, bytes)) = self.backlog.front() {
            if end <= now {
                self.backlog.pop_front();
                self.backlog_bytes -= bytes;
            } else {
                break;
            }
        }
        self.backlog_bytes
    }

    /// Offer a packet of `wire_bytes` to the link at `now`.
    pub fn enqueue(&mut self, now: SimTime, wire_bytes: u64, rng: &mut SimRng) -> EnqueueOutcome {
        if self.rate_bps == 0 {
            return EnqueueOutcome::Dropped(DropReason::LinkDown);
        }
        if self.loss.lost(rng) {
            self.dropped_channel += 1;
            return EnqueueOutcome::Dropped(DropReason::Channel);
        }
        if self.backlog_bytes(now) + wire_bytes > self.queue_capacity {
            self.dropped_queue += 1;
            return EnqueueOutcome::Dropped(DropReason::QueueFull);
        }
        let start = self.busy_until.max(now);
        let tx = SimDuration::transmission(wire_bytes, self.rate_bps);
        let serialized = start + tx;
        self.busy_until = serialized;
        self.backlog.push_back((serialized, wire_bytes));
        self.backlog_bytes += wire_bytes;
        self.delivered_packets += 1;
        EnqueueOutcome::Delivered(serialized + self.prop_delay)
    }

    /// Packets accepted so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets lost to channel error so far.
    pub fn dropped_channel(&self) -> u64 {
        self.dropped_channel
    }

    /// Packets tail-dropped so far.
    pub fn dropped_queue(&self) -> u64 {
        self.dropped_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(rate_bps: u64, delay_ms: u64) -> Link {
        Link::new(LinkConfig {
            rate_bps,
            prop_delay: SimDuration::from_millis(delay_ms),
            queue_capacity: 64 * 1024,
            loss_prob: 0.0,
        })
    }

    #[test]
    fn single_packet_latency() {
        let mut link = lossless(12_000_000, 10); // 1500 B = 1 ms serialization
        let mut rng = SimRng::new(1);
        match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => assert_eq!(t, SimTime::from_millis(11)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialization_queues_back_to_back() {
        let mut link = lossless(12_000_000, 0);
        let mut rng = SimRng::new(1);
        let t1 = match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        let t2 = match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(t1, SimTime::from_millis(1));
        assert_eq!(t2, SimTime::from_millis(2));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: 3000,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(1);
        assert!(matches!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
        assert!(matches!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
        assert_eq!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        assert_eq!(link.dropped_queue(), 1);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 12_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: 4500,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(1);
        for _ in 0..3 {
            assert!(matches!(
                link.enqueue(SimTime::ZERO, 1500, &mut rng),
                EnqueueOutcome::Delivered(_)
            ));
        }
        assert_eq!(link.backlog_bytes(SimTime::ZERO), 4500);
        // After 2 ms, two packets have serialized.
        assert_eq!(link.backlog_bytes(SimTime::from_millis(2)), 1500);
        assert!(matches!(
            link.enqueue(SimTime::from_millis(2), 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
    }

    #[test]
    fn channel_loss_rate_is_respected() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: u64::MAX,
            loss_prob: 0.1,
        });
        let mut rng = SimRng::new(5);
        let mut t = SimTime::ZERO;
        let mut lost = 0;
        for _ in 0..50_000 {
            if matches!(
                link.enqueue(t, 1500, &mut rng),
                EnqueueOutcome::Dropped(DropReason::Channel)
            ) {
                lost += 1;
            }
            t += SimDuration::from_micros(100);
        }
        let rate = lost as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn zero_rate_means_down() {
        let mut link = lossless(1_000_000, 0);
        link.set_rate_bps(SimTime::ZERO, 0);
        let mut rng = SimRng::new(1);
        assert_eq!(
            link.enqueue(SimTime::ZERO, 100, &mut rng),
            EnqueueOutcome::Dropped(DropReason::LinkDown)
        );
    }

    #[test]
    fn rate_change_reserializes_backlog() {
        let mut link = lossless(12_000_000, 0);
        let mut rng = SimRng::new(1);
        link.enqueue(SimTime::ZERO, 1500, &mut rng); // would serialize by 1 ms
        link.set_rate_bps(SimTime::ZERO, 1_200_000); // 10x slower
                                                     // The queued packet now occupies the serializer until 10 ms, so the
                                                     // next packet waits behind it and takes another 10 ms itself.
        match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => assert_eq!(t, SimTime::from_millis(20)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rate_recovery_does_not_strand_queue() {
        // Regression: fill the queue at a collapsed rate, restore the rate,
        // and verify the queue drains instead of tail-dropping forever
        // behind serialization-end times computed at the slow rate.
        let mut link = Link::new(LinkConfig {
            rate_bps: 10_000, // collapsed: 1500 B takes 1.2 s
            prop_delay: SimDuration::ZERO,
            queue_capacity: 6000,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(1);
        for _ in 0..4 {
            assert!(matches!(
                link.enqueue(SimTime::ZERO, 1500, &mut rng),
                EnqueueOutcome::Delivered(_)
            ));
        }
        assert_eq!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        // Recover to 12 Mbps at t = 100 ms: the backlog re-serializes at
        // 1 ms per packet, so by t = 105 ms the queue must be empty again.
        let t = SimTime::from_millis(100);
        link.set_rate_bps(t, 12_000_000);
        assert_eq!(link.backlog_bytes(SimTime::from_millis(105)), 0);
        assert!(matches!(
            link.enqueue(SimTime::from_millis(105), 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Same marginal loss, radically different clustering: measure the
        // mean run length of consecutive losses under GE vs Bernoulli.
        let ge = GeParams {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.1,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        let marginal = ge.steady_state_loss();
        let mean_run = |mut process: LossProcess, seed: u64| {
            let mut rng = SimRng::new(seed);
            let (mut runs, mut losses, mut in_run) = (0u64, 0u64, false);
            for _ in 0..200_000 {
                if process.lost(&mut rng) {
                    losses += 1;
                    if !in_run {
                        runs += 1;
                        in_run = true;
                    }
                } else {
                    in_run = false;
                }
            }
            (losses as f64 / 200_000.0, losses as f64 / runs as f64)
        };
        let (ge_rate, ge_run) = mean_run(LossProcess::new(LossModel::GilbertElliott(ge)), 31);
        let (_, iid_run) = mean_run(LossProcess::new(LossModel::Bernoulli(marginal)), 31);
        assert!((ge_rate - marginal).abs() < 0.01, "marginal {ge_rate}");
        assert!(
            ge_run > 1.5 * iid_run,
            "GE run {ge_run} should exceed iid run {iid_run}"
        );
    }

    #[test]
    fn loss_model_switch_resets_burst_state() {
        let ge = GeParams {
            p_good_to_bad: 1.0,
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut p = LossProcess::new(LossModel::GilbertElliott(ge));
        let mut rng = SimRng::new(3);
        assert!(p.lost(&mut rng)); // first packet flips to bad and dies
        assert_eq!(p.instantaneous_loss(), 1.0);
        p.set_model(LossModel::GilbertElliott(ge));
        assert_eq!(p.instantaneous_loss(), 0.0, "back in the good state");
    }

    #[test]
    fn backbone_config_is_forgiving() {
        let cfg = LinkConfig::backbone(SimDuration::from_millis(5));
        let mut link = Link::new(cfg);
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(matches!(
                link.enqueue(SimTime::ZERO, 1500, &mut rng),
                EnqueueOutcome::Delivered(_)
            ));
        }
        assert_eq!(link.dropped_queue() + link.dropped_channel(), 0);
    }
}
