//! A rate-limited, queueing, lossy point-to-point link.
//!
//! Each direction of a network path is one `Link`: packets are serialized at
//! the link's current rate behind a drop-tail queue, then experience the
//! propagation delay. Random (wireless) loss is applied on entry, congestion
//! loss comes from the finite queue — which is what makes the TCP models
//! upstairs regulate themselves realistically.
//!
//! The link is poll-less: [`Link::enqueue`] immediately returns the delivery
//! time (or the drop), and the host schedules the arrival event. Rate changes
//! apply to subsequently enqueued packets; with the paper's modulation
//! periods (tens of seconds) the error from in-flight packets draining at the
//! old rate is bounded by one queue's worth of bytes.

use emptcp_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of a link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Drop-tail queue capacity in bytes (wire bytes awaiting serialization).
    pub queue_capacity: u64,
    /// Probability that an entering packet is lost to the channel
    /// (independent of queue state).
    pub loss_prob: f64,
}

impl LinkConfig {
    /// A generous wired backbone hop: used for the server's Ethernet side
    /// and for ACK-carrying reverse channels that are never the bottleneck.
    pub fn backbone(prop_delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay,
            queue_capacity: 4 * 1024 * 1024,
            loss_prob: 0.0,
        }
    }
}

/// Why a packet failed to enter the link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Lost to random channel error.
    Channel,
    /// Tail-dropped by the full queue.
    QueueFull,
    /// The link is administratively down (zero rate / out of range).
    LinkDown,
}

/// Result of offering a packet to the link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueOutcome {
    /// Accepted; the packet arrives at the far end at this time.
    Delivered(SimTime),
    /// Dropped.
    Dropped(DropReason),
}

/// One direction of a point-to-point pipe.
#[derive(Clone, Debug)]
pub struct Link {
    rate_bps: u64,
    prop_delay: SimDuration,
    queue_capacity: u64,
    loss_prob: f64,
    /// When the serializer frees up.
    busy_until: SimTime,
    /// Wire bytes whose serialization completes in the future, for backlog
    /// accounting: `(serialization_end, bytes)`.
    backlog: VecDeque<(SimTime, u64)>,
    backlog_bytes: u64,
    /// Counters for diagnostics and tests.
    delivered_packets: u64,
    dropped_channel: u64,
    dropped_queue: u64,
}

impl Link {
    /// A link with the given configuration, idle at time zero.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            rate_bps: config.rate_bps,
            prop_delay: config.prop_delay,
            queue_capacity: config.queue_capacity,
            loss_prob: config.loss_prob,
            busy_until: SimTime::ZERO,
            backlog: VecDeque::new(),
            backlog_bytes: 0,
            delivered_packets: 0,
            dropped_channel: 0,
            dropped_queue: 0,
        }
    }

    /// Current serialization rate.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the serialization rate (bandwidth modulation, contention,
    /// mobility). Zero means the link is down.
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        self.rate_bps = rate_bps;
    }

    /// Change the random loss probability (contention raises it).
    pub fn set_loss_prob(&mut self, p: f64) {
        self.loss_prob = p.clamp(0.0, 1.0);
    }

    /// Current random loss probability.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// One-way propagation delay.
    pub fn prop_delay(&self) -> SimDuration {
        self.prop_delay
    }

    /// Change the propagation delay (e.g. a different server location).
    pub fn set_prop_delay(&mut self, d: SimDuration) {
        self.prop_delay = d;
    }

    /// Bytes queued ahead of a packet arriving at `now`.
    pub fn backlog_bytes(&mut self, now: SimTime) -> u64 {
        while let Some(&(end, bytes)) = self.backlog.front() {
            if end <= now {
                self.backlog.pop_front();
                self.backlog_bytes -= bytes;
            } else {
                break;
            }
        }
        self.backlog_bytes
    }

    /// Offer a packet of `wire_bytes` to the link at `now`.
    pub fn enqueue(&mut self, now: SimTime, wire_bytes: u64, rng: &mut SimRng) -> EnqueueOutcome {
        if self.rate_bps == 0 {
            return EnqueueOutcome::Dropped(DropReason::LinkDown);
        }
        if self.loss_prob > 0.0 && rng.chance(self.loss_prob) {
            self.dropped_channel += 1;
            return EnqueueOutcome::Dropped(DropReason::Channel);
        }
        if self.backlog_bytes(now) + wire_bytes > self.queue_capacity {
            self.dropped_queue += 1;
            return EnqueueOutcome::Dropped(DropReason::QueueFull);
        }
        let start = self.busy_until.max(now);
        let tx = SimDuration::transmission(wire_bytes, self.rate_bps);
        let serialized = start + tx;
        self.busy_until = serialized;
        self.backlog.push_back((serialized, wire_bytes));
        self.backlog_bytes += wire_bytes;
        self.delivered_packets += 1;
        EnqueueOutcome::Delivered(serialized + self.prop_delay)
    }

    /// Packets accepted so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets lost to channel error so far.
    pub fn dropped_channel(&self) -> u64 {
        self.dropped_channel
    }

    /// Packets tail-dropped so far.
    pub fn dropped_queue(&self) -> u64 {
        self.dropped_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless(rate_bps: u64, delay_ms: u64) -> Link {
        Link::new(LinkConfig {
            rate_bps,
            prop_delay: SimDuration::from_millis(delay_ms),
            queue_capacity: 64 * 1024,
            loss_prob: 0.0,
        })
    }

    #[test]
    fn single_packet_latency() {
        let mut link = lossless(12_000_000, 10); // 1500 B = 1 ms serialization
        let mut rng = SimRng::new(1);
        match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => assert_eq!(t, SimTime::from_millis(11)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialization_queues_back_to_back() {
        let mut link = lossless(12_000_000, 0);
        let mut rng = SimRng::new(1);
        let t1 = match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        let t2 = match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            EnqueueOutcome::Delivered(t) => t,
            _ => unreachable!(),
        };
        assert_eq!(t1, SimTime::from_millis(1));
        assert_eq!(t2, SimTime::from_millis(2));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: 3000,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(1);
        assert!(matches!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
        assert!(matches!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
        assert_eq!(
            link.enqueue(SimTime::ZERO, 1500, &mut rng),
            EnqueueOutcome::Dropped(DropReason::QueueFull)
        );
        assert_eq!(link.dropped_queue(), 1);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 12_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: 4500,
            loss_prob: 0.0,
        });
        let mut rng = SimRng::new(1);
        for _ in 0..3 {
            assert!(matches!(
                link.enqueue(SimTime::ZERO, 1500, &mut rng),
                EnqueueOutcome::Delivered(_)
            ));
        }
        assert_eq!(link.backlog_bytes(SimTime::ZERO), 4500);
        // After 2 ms, two packets have serialized.
        assert_eq!(link.backlog_bytes(SimTime::from_millis(2)), 1500);
        assert!(matches!(
            link.enqueue(SimTime::from_millis(2), 1500, &mut rng),
            EnqueueOutcome::Delivered(_)
        ));
    }

    #[test]
    fn channel_loss_rate_is_respected() {
        let mut link = Link::new(LinkConfig {
            rate_bps: 1_000_000_000,
            prop_delay: SimDuration::ZERO,
            queue_capacity: u64::MAX,
            loss_prob: 0.1,
        });
        let mut rng = SimRng::new(5);
        let mut t = SimTime::ZERO;
        let mut lost = 0;
        for _ in 0..50_000 {
            if matches!(
                link.enqueue(t, 1500, &mut rng),
                EnqueueOutcome::Dropped(DropReason::Channel)
            ) {
                lost += 1;
            }
            t += SimDuration::from_micros(100);
        }
        let rate = lost as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "loss rate {rate}");
    }

    #[test]
    fn zero_rate_means_down() {
        let mut link = lossless(1_000_000, 0);
        link.set_rate_bps(0);
        let mut rng = SimRng::new(1);
        assert_eq!(
            link.enqueue(SimTime::ZERO, 100, &mut rng),
            EnqueueOutcome::Dropped(DropReason::LinkDown)
        );
    }

    #[test]
    fn rate_change_affects_new_packets() {
        let mut link = lossless(12_000_000, 0);
        let mut rng = SimRng::new(1);
        link.enqueue(SimTime::ZERO, 1500, &mut rng); // serializes by 1 ms
        link.set_rate_bps(1_200_000); // 10x slower
        match link.enqueue(SimTime::ZERO, 1500, &mut rng) {
            // 1 ms (waiting) + 10 ms serialization
            EnqueueOutcome::Delivered(t) => assert_eq!(t, SimTime::from_millis(11)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backbone_config_is_forgiving() {
        let cfg = LinkConfig::backbone(SimDuration::from_millis(5));
        let mut link = Link::new(cfg);
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(matches!(
                link.enqueue(SimTime::ZERO, 1500, &mut rng),
                EnqueueOutcome::Delivered(_)
            ));
        }
        assert_eq!(link.dropped_queue() + link.dropped_channel(), 0);
    }
}
