//! Mobility: waypoint routes and distance-based 802.11g rate adaptation.
//!
//! §4.5 of the paper walks a fixed route through the UMass CS building
//! (Fig 11): the device is sometimes within the AP's usable range and
//! sometimes outside it, so WiFi throughput rises and falls with position
//! while the association itself is retained. The model here is:
//!
//! * a [`WaypointRoute`]: piecewise-linear position over time,
//! * an 802.11g **rate-versus-distance staircase** ([`RateAdaptation`]):
//!   log-distance path loss collapsed into the standard rate-tier table,
//!   scaled by MAC efficiency to yield goodput,
//! * out-of-range ⇒ near-zero goodput but (per the paper's observation)
//!   *no* disassociation, which is exactly the situation where
//!   "MPTCP with WiFi-First" degenerates to a dead WiFi path.

use emptcp_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A 2-D position in metres.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Position {
    /// Metres east.
    pub x: f64,
    /// Metres north.
    pub y: f64,
}

impl Position {
    /// Construct a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A route given as timestamped waypoints; position is linearly interpolated
/// between them and clamped at the ends.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WaypointRoute {
    waypoints: Vec<(SimTime, Position)>,
}

impl WaypointRoute {
    /// Build a route from waypoints; timestamps must be strictly increasing
    /// and at least one waypoint is required.
    pub fn new(waypoints: Vec<(SimTime, Position)>) -> Self {
        assert!(!waypoints.is_empty(), "route needs at least one waypoint");
        assert!(
            waypoints.windows(2).all(|w| w[0].0 < w[1].0),
            "waypoint times must be strictly increasing"
        );
        WaypointRoute { waypoints }
    }

    /// Position at time `t`.
    pub fn position_at(&self, t: SimTime) -> Position {
        let ws = &self.waypoints;
        if t <= ws[0].0 {
            return ws[0].1;
        }
        if t >= ws[ws.len() - 1].0 {
            return ws[ws.len() - 1].1;
        }
        let idx = ws.partition_point(|&(wt, _)| wt <= t);
        let (t0, p0) = ws[idx - 1];
        let (t1, p1) = ws[idx];
        let span = (t1 - t0).as_secs_f64();
        let frac = (t - t0).as_secs_f64() / span;
        Position {
            x: p0.x + (p1.x - p0.x) * frac,
            y: p0.y + (p1.y - p0.y) * frac,
        }
    }

    /// Time of the last waypoint.
    pub fn end_time(&self) -> SimTime {
        self.waypoints[self.waypoints.len() - 1].0
    }
}

/// 802.11g PHY rate adaptation as a distance staircase, yielding TCP-visible
/// goodput (PHY rate × MAC efficiency).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateAdaptation {
    /// `(max_distance_m, phy_rate_mbps)` tiers, sorted by distance.
    tiers: Vec<(f64, f64)>,
    /// Fraction of the PHY rate delivered as TCP goodput.
    mac_efficiency: f64,
    /// Goodput floor while still associated but effectively out of range.
    out_of_range_bps: u64,
    /// Distance beyond which even the floor disappears (true radio silence).
    silence_distance_m: f64,
}

impl RateAdaptation {
    /// The standard 802.11g tier table used throughout the reproduction.
    /// Distances approximate indoor propagation through walls.
    pub fn ieee80211g() -> Self {
        RateAdaptation {
            tiers: vec![
                (10.0, 54.0),
                (15.0, 48.0),
                (20.0, 36.0),
                (25.0, 24.0),
                (30.0, 18.0),
                (35.0, 12.0),
                (40.0, 9.0),
                (45.0, 6.0),
            ],
            mac_efficiency: 0.55,
            out_of_range_bps: 150_000,
            silence_distance_m: 70.0,
        }
    }

    /// Goodput (bps) at the given distance from the AP.
    pub fn goodput_bps(&self, distance_m: f64) -> u64 {
        for &(max_d, phy_mbps) in &self.tiers {
            if distance_m <= max_d {
                return (phy_mbps * self.mac_efficiency * 1e6) as u64;
            }
        }
        if distance_m <= self.silence_distance_m {
            self.out_of_range_bps
        } else {
            0
        }
    }

    /// The usable-range radius (the red dashed circle in Fig 11): the
    /// distance beyond which the device falls off the tier table.
    pub fn usable_range_m(&self) -> f64 {
        self.tiers.last().map(|&(d, _)| d).unwrap_or(0.0)
    }
}

/// Ties a route, an AP position and rate adaptation together: the WiFi
/// nominal capacity as a function of time.
#[derive(Clone, Debug)]
pub struct MobilityModel {
    route: WaypointRoute,
    ap: Position,
    adaptation: RateAdaptation,
}

impl MobilityModel {
    /// Construct a model.
    pub fn new(route: WaypointRoute, ap: Position, adaptation: RateAdaptation) -> Self {
        MobilityModel {
            route,
            ap,
            adaptation,
        }
    }

    /// Distance from AP at time `t`.
    pub fn distance_at(&self, t: SimTime) -> f64 {
        self.route.position_at(t).distance_to(self.ap)
    }

    /// WiFi goodput at time `t`.
    pub fn wifi_goodput_bps(&self, t: SimTime) -> u64 {
        self.adaptation.goodput_bps(self.distance_at(t))
    }

    /// End of the route.
    pub fn end_time(&self) -> SimTime {
        self.route.end_time()
    }

    /// True if the device is within the rate-tier range at time `t`.
    pub fn in_usable_range(&self, t: SimTime) -> bool {
        self.distance_at(t) <= self.adaptation.usable_range_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn route_interpolates_linearly() {
        let route = WaypointRoute::new(vec![
            (s(0), Position::new(0.0, 0.0)),
            (s(10), Position::new(100.0, 0.0)),
        ]);
        assert_eq!(route.position_at(s(5)).x, 50.0);
        assert_eq!(route.position_at(s(0)).x, 0.0);
        // Clamped at the ends.
        assert_eq!(route.position_at(s(100)).x, 100.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn route_rejects_unordered_waypoints() {
        WaypointRoute::new(vec![
            (s(5), Position::new(0.0, 0.0)),
            (s(5), Position::new(1.0, 0.0)),
        ]);
    }

    #[test]
    fn rate_tiers_decrease_with_distance() {
        let ra = RateAdaptation::ieee80211g();
        let mut last = u64::MAX;
        for d in [5.0, 12.0, 18.0, 23.0, 28.0, 33.0, 38.0, 43.0, 50.0, 80.0] {
            let r = ra.goodput_bps(d);
            assert!(r <= last, "goodput must be non-increasing (d={d})");
            last = r;
        }
        // Near the AP: 54 Mbps * 0.55 efficiency ≈ 29.7 Mbps goodput.
        assert_eq!(ra.goodput_bps(5.0), 29_700_000);
        // Out of tier range but associated: tiny floor.
        assert_eq!(ra.goodput_bps(50.0), 150_000);
        // Beyond silence: zero.
        assert_eq!(ra.goodput_bps(100.0), 0);
    }

    #[test]
    fn usable_range_matches_last_tier() {
        assert_eq!(RateAdaptation::ieee80211g().usable_range_m(), 45.0);
    }

    #[test]
    fn mobility_model_tracks_distance() {
        let route = WaypointRoute::new(vec![
            (s(0), Position::new(0.0, 0.0)),
            (s(100), Position::new(100.0, 0.0)),
        ]);
        let m = MobilityModel::new(route, Position::new(0.0, 0.0), RateAdaptation::ieee80211g());
        assert_eq!(m.distance_at(s(0)), 0.0);
        assert_eq!(m.distance_at(s(50)), 50.0);
        assert!(m.in_usable_range(s(30)));
        assert!(!m.in_usable_range(s(50)));
        assert!(m.wifi_goodput_bps(s(0)) > m.wifi_goodput_bps(s(40)));
        assert_eq!(m.end_time(), s(100));
    }

    #[test]
    fn walking_out_and_back_recovers_rate() {
        let route = WaypointRoute::new(vec![
            (s(0), Position::new(5.0, 0.0)),
            (s(50), Position::new(60.0, 0.0)),
            (s(100), Position::new(5.0, 0.0)),
        ]);
        let m = MobilityModel::new(route, Position::new(0.0, 0.0), RateAdaptation::ieee80211g());
        let near = m.wifi_goodput_bps(s(0));
        let far = m.wifi_goodput_bps(s(50));
        let back = m.wifi_goodput_bps(s(100));
        assert!(far < near);
        assert_eq!(near, back);
    }
}
