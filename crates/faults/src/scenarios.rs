//! A library of named failure scenarios, loaded from the corpus files.
//!
//! Each scenario is a deterministic [`FaultPlan`] modelling a failure
//! pattern mobile MPTCP deployments actually meet. The plans are no longer
//! hand-written here: every entry is parsed out of the committed
//! `scenarios/<name>.scenario` file (embedded at compile time), so the
//! JSON corpus is the single source of truth and hand-editing a file
//! changes the exhibit it feeds. The timings assume the transfer starts at
//! t = 0 and target the first ~20 s of the run, so a moderate download (a
//! few tens of MB) is guaranteed to still be in flight when the fault
//! lands.

use crate::plan::FaultPlan;
use crate::spec::{expand, FaultSpec};

/// A named scenario with a one-line description.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Stable CLI name.
    pub name: &'static str,
    /// What failure pattern it models (from the scenario file).
    pub summary: String,
}

/// `(name, embedded file)` for every library scenario, sorted by name so
/// `--list` order, iteration order and file order always agree.
const FILES: &[(&str, &str)] = &[
    (
        "ap-vanish",
        include_str!("../../../scenarios/ap-vanish.scenario"),
    ),
    (
        "burst-loss-storm",
        include_str!("../../../scenarios/burst-loss-storm.scenario"),
    ),
    (
        "congested_core",
        include_str!("../../../scenarios/congested_core.scenario"),
    ),
    (
        "flappy-wifi",
        include_str!("../../../scenarios/flappy-wifi.scenario"),
    ),
    (
        "handover-walk",
        include_str!("../../../scenarios/handover-walk.scenario"),
    ),
    (
        "lte-tunnel",
        include_str!("../../../scenarios/lte-tunnel.scenario"),
    ),
];

/// Sorted names of every scenario in the library.
pub const NAMES: [&str; 6] = [
    "ap-vanish",
    "burst-loss-storm",
    "congested_core",
    "flappy-wifi",
    "handover-walk",
    "lte-tunnel",
];

fn file(name: &str) -> Option<&'static str> {
    FILES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, text)| *text)
}

/// Parse the `summary` and `faults` fields out of a scenario file. The
/// full scenario schema lives a crate above (`emptcp-scenario`); this
/// crate only needs the slice of it that describes the fault script.
fn parse(name: &str, text: &str) -> (String, Vec<FaultSpec>) {
    let value: serde_json::Value = serde_json::from_str(text)
        .unwrap_or_else(|e| panic!("scenario file `{name}` is not valid JSON: {e:?}"));
    let summary = value
        .get("summary")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("scenario file `{name}` has no summary"))
        .to_string();
    let faults = value
        .get("faults")
        .cloned()
        .unwrap_or_else(|| panic!("scenario file `{name}` has no fault script"));
    let specs: Vec<FaultSpec> = serde_json::from_value(faults)
        .unwrap_or_else(|e| panic!("scenario file `{name}` fault script is malformed: {e:?}"));
    (summary, specs)
}

/// Every scenario in the library, sorted by name.
pub fn all() -> Vec<ScenarioSpec> {
    FILES
        .iter()
        .map(|(name, text)| ScenarioSpec {
            name,
            summary: parse(name, text).0,
        })
        .collect()
}

/// The plan for a named scenario, or `None` for an unknown name.
pub fn plan(name: &str) -> Option<FaultPlan> {
    let text = file(name)?;
    let (_, specs) = parse(name, text);
    Some(expand(&specs))
}

/// The spec for a named scenario.
pub fn spec(name: &str) -> Option<ScenarioSpec> {
    let text = file(name)?;
    Some(ScenarioSpec {
        name: FILES.iter().find(|(n, _)| *n == name).map(|(n, _)| *n)?,
        summary: parse(name, text).0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_sim::SimTime;

    #[test]
    fn every_listed_scenario_has_a_plan() {
        for sp in all() {
            let p = plan(sp.name).unwrap_or_else(|| panic!("no plan for {}", sp.name));
            assert!(!p.is_empty(), "{} is empty", sp.name);
            assert!(
                p.end_time().unwrap() <= SimTime::from_secs(30),
                "{} runs past the guaranteed-in-flight window",
                sp.name
            );
            assert!(spec(sp.name).is_some());
            assert!(!sp.summary.is_empty());
        }
        assert!(plan("no-such-scenario").is_none());
        assert!(spec("no-such-scenario").is_none());
    }

    #[test]
    fn library_is_sorted_and_matches_names() {
        let listed: Vec<&str> = all().iter().map(|s| s.name).collect();
        let mut sorted = listed.clone();
        sorted.sort_unstable();
        assert_eq!(listed, sorted, "library must list in sorted order");
        assert_eq!(listed, NAMES.to_vec());
    }

    #[test]
    fn plans_are_deterministic() {
        for sp in all() {
            let a = plan(sp.name).unwrap().into_events();
            let b = plan(sp.name).unwrap().into_events();
            assert_eq!(a, b, "{} not deterministic", sp.name);
        }
    }

    #[test]
    fn every_library_plan_restores_nominal() {
        for sp in all() {
            assert!(
                plan(sp.name).unwrap().restores_nominal(),
                "{} leaves the network perturbed",
                sp.name
            );
        }
    }
}
