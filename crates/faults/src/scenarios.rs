//! A library of named failure scenarios.
//!
//! Each scenario is a deterministic [`FaultPlan`] modelling a failure
//! pattern mobile MPTCP deployments actually meet. The timings assume the
//! transfer starts at t = 0 and target the first ~20 s of the run, so a
//! moderate download (a few tens of MB) is guaranteed to still be in
//! flight when the fault lands.

use crate::plan::{FaultAction, FaultPlan, FaultTarget};
use emptcp_phy::GeParams;
use emptcp_sim::{SimDuration, SimTime};

/// A named scenario with a one-line description.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpec {
    /// Stable CLI name.
    pub name: &'static str,
    /// What failure pattern it models.
    pub summary: &'static str,
}

/// Every scenario in the library, in presentation order.
pub const ALL: [ScenarioSpec; 6] = [
    ScenarioSpec {
        name: "ap-vanish",
        summary: "the WiFi AP disappears for 8 s mid-transfer (power cycle, kicked client)",
    },
    ScenarioSpec {
        name: "lte-tunnel",
        summary: "cellular coverage drops for 6 s (tunnel, elevator) while WiFi survives",
    },
    ScenarioSpec {
        name: "flappy-wifi",
        summary: "six rapid WiFi association flaps (500 ms down, 1.5 s up) from a marginal AP",
    },
    ScenarioSpec {
        name: "burst-loss-storm",
        summary: "10 s of Gilbert-Elliott burst loss on WiFi (deep fades, microwave interference)",
    },
    ScenarioSpec {
        name: "handover-walk",
        summary:
            "walking out of coverage: WiFi rate decays, a 4 s handover gap, cellular RRC stall",
    },
    ScenarioSpec {
        name: "congested_core",
        summary:
            "a shared core bottleneck collapses to a blackhole, then ramps back while RTTs spike",
    },
];

/// The plan for a named scenario, or `None` for an unknown name.
pub fn plan(name: &str) -> Option<FaultPlan> {
    let s = SimTime::from_secs;
    let d = SimDuration::from_secs;
    let ms = SimDuration::from_millis;
    match name {
        "ap-vanish" => Some(FaultPlan::new().blackout(FaultTarget::Wifi, s(5), d(8))),
        "lte-tunnel" => Some(FaultPlan::new().blackout(FaultTarget::Cellular, s(5), d(6))),
        "flappy-wifi" => {
            Some(FaultPlan::new().flap_train(FaultTarget::Wifi, s(3), 6, ms(500), ms(1500)))
        }
        "burst-loss-storm" => Some(FaultPlan::new().burst_loss(
            FaultTarget::Wifi,
            s(4),
            d(10),
            GeParams {
                p_good_to_bad: 0.05,
                p_bad_to_good: 0.25,
                loss_good: 0.0,
                loss_bad: 0.7,
            },
        )),
        "handover-walk" => Some(
            FaultPlan::new()
                // Signal decays on the way out...
                .at(s(3), FaultTarget::Wifi, FaultAction::Rate(Some(2_000_000)))
                .at(s(6), FaultTarget::Wifi, FaultAction::Rate(Some(500_000)))
                // ...the association drops for the walk between APs...
                .blackout(FaultTarget::Wifi, s(9), d(4))
                // ...full strength again once the new AP associates...
                .at(s(13), FaultTarget::Wifi, FaultAction::Rate(None))
                // ...while the suddenly-busy cellular radio stalls in RRC
                // signalling for a moment.
                .rrc_stall(s(9), d(2), ms(150)),
        ),
        "congested_core" => Some(
            FaultPlan::new()
                // Congestion builds: every path crossing the core sees its
                // RTT inflate well before the router keels over...
                .rtt_spike(FaultTarget::Core, s(3), d(12), ms(120))
                // ...then the core collapses to a silent blackhole for 5 s
                // (long enough for consecutive-RTO failure detection to
                // declare subflows dead) and ramps back in stages.
                .bandwidth_collapse(
                    FaultTarget::Core,
                    s(5),
                    d(5),
                    0,
                    &[1_000_000, 8_000_000],
                    d(2),
                ),
        ),
        _ => None,
    }
}

/// The spec for a named scenario.
pub fn spec(name: &str) -> Option<ScenarioSpec> {
    ALL.iter().copied().find(|sp| sp.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_scenario_has_a_plan() {
        for sp in ALL {
            let p = plan(sp.name).unwrap_or_else(|| panic!("no plan for {}", sp.name));
            assert!(!p.is_empty(), "{} is empty", sp.name);
            assert!(
                p.end_time().unwrap() <= SimTime::from_secs(30),
                "{} runs past the guaranteed-in-flight window",
                sp.name
            );
            assert!(spec(sp.name).is_some());
        }
        assert!(plan("no-such-scenario").is_none());
    }

    #[test]
    fn plans_are_deterministic() {
        for sp in ALL {
            let a = plan(sp.name).unwrap().into_events();
            let b = plan(sp.name).unwrap().into_events();
            assert_eq!(a, b, "{} not deterministic", sp.name);
        }
    }
}
