//! Declarative fault primitives — the serializable layer above [`FaultPlan`].
//!
//! A [`FaultSpec`] names one failure *pattern* (a blackout, a flap train, a
//! bandwidth collapse…) with millisecond-granularity timing, exactly the
//! vocabulary the `.scenario` corpus files speak. Specs expand to the same
//! pre-expanded [`FaultPlan`] event streams the builder methods produce, so
//! everything downstream (the injector, the surfaces, the telemetry) is
//! unchanged — but a chaos scenario can now be written, diffed, shrunk and
//! replayed as plain JSON instead of Rust.

use crate::plan::{FaultAction, FaultPlan, FaultTarget};
use emptcp_phy::GeParams;
use emptcp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One declarative fault primitive. All times are absolute milliseconds
/// from the start of the run; durations are milliseconds. Every variant
/// except [`FaultSpec::RateStep`] is self-restoring — it expands to a
/// perturbation *and* the event that undoes it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Total interface blackout: down at `from_ms`, up `dur_ms` later.
    Blackout {
        /// Interface the blackout hits.
        target: FaultTarget,
        /// Start, ms.
        from_ms: u64,
        /// Outage length, ms.
        dur_ms: u64,
    },
    /// `flaps` short blackouts back to back (down `down_ms`, up `up_ms`).
    FlapTrain {
        /// Interface that flaps.
        target: FaultTarget,
        /// First flap start, ms.
        from_ms: u64,
        /// Number of down/up cycles.
        flaps: u32,
        /// Down time per flap, ms.
        down_ms: u64,
        /// Up time between flaps, ms.
        up_ms: u64,
    },
    /// A Gilbert–Elliott burst-loss window.
    BurstLoss {
        /// Interface whose channel turns bursty.
        target: FaultTarget,
        /// Window start, ms.
        from_ms: u64,
        /// Window length, ms.
        dur_ms: u64,
        /// The burst-loss channel parameters.
        ge: GeParams,
    },
    /// Bandwidth collapse with a staged recovery ramp.
    BandwidthCollapse {
        /// Interface whose rate collapses.
        target: FaultTarget,
        /// Collapse instant, ms.
        from_ms: u64,
        /// How long the collapsed rate holds, ms.
        hold_ms: u64,
        /// The collapsed rate (0 = silent blackhole).
        collapsed_bps: u64,
        /// Staged recovery rates applied one per `step_ms` after the hold.
        ramp_bps: Vec<u64>,
        /// Spacing of the ramp steps, ms.
        step_ms: u64,
    },
    /// An RTT spike: extra one-way delay for a window.
    RttSpike {
        /// Interface whose delay inflates.
        target: FaultTarget,
        /// Spike start, ms.
        from_ms: u64,
        /// Spike length, ms.
        dur_ms: u64,
        /// Added one-way delay, ms.
        extra_ms: u64,
    },
    /// A WiFi→cellular handover gap (WiFi association lost for `gap_ms`).
    Handover {
        /// Gap start, ms.
        at_ms: u64,
        /// Scan + re-association walk length, ms.
        gap_ms: u64,
    },
    /// A cellular RRC promotion stall (extra signalling delay window).
    RrcStall {
        /// Stall start, ms.
        at_ms: u64,
        /// Stall length, ms.
        dur_ms: u64,
        /// Added one-way delay while stalled, ms.
        extra_ms: u64,
    },
    /// A raw rate step (`None` = back to nominal). The only primitive that
    /// is not self-restoring: a scenario using `Some` steps must end the
    /// sequence with a `None` step to stay recoverable — the validator
    /// folds the whole plan to check.
    RateStep {
        /// Interface whose rate is set.
        target: FaultTarget,
        /// When, ms.
        at_ms: u64,
        /// New rate, or `None` to restore the nominal rate.
        bps: Option<u64>,
    },
}

impl FaultSpec {
    /// Append this primitive's expanded events to a plan.
    pub fn apply(&self, plan: FaultPlan) -> FaultPlan {
        let t = SimTime::from_millis;
        let d = SimDuration::from_millis;
        match self {
            FaultSpec::Blackout {
                target,
                from_ms,
                dur_ms,
            } => plan.blackout(*target, t(*from_ms), d(*dur_ms)),
            FaultSpec::FlapTrain {
                target,
                from_ms,
                flaps,
                down_ms,
                up_ms,
            } => plan.flap_train(*target, t(*from_ms), *flaps, d(*down_ms), d(*up_ms)),
            FaultSpec::BurstLoss {
                target,
                from_ms,
                dur_ms,
                ge,
            } => plan.burst_loss(*target, t(*from_ms), d(*dur_ms), *ge),
            FaultSpec::BandwidthCollapse {
                target,
                from_ms,
                hold_ms,
                collapsed_bps,
                ramp_bps,
                step_ms,
            } => plan.bandwidth_collapse(
                *target,
                t(*from_ms),
                d(*hold_ms),
                *collapsed_bps,
                ramp_bps,
                d(*step_ms),
            ),
            FaultSpec::RttSpike {
                target,
                from_ms,
                dur_ms,
                extra_ms,
            } => plan.rtt_spike(*target, t(*from_ms), d(*dur_ms), d(*extra_ms)),
            FaultSpec::Handover { at_ms, gap_ms } => plan.handover(t(*at_ms), d(*gap_ms)),
            FaultSpec::RrcStall {
                at_ms,
                dur_ms,
                extra_ms,
            } => plan.rrc_stall(t(*at_ms), d(*dur_ms), d(*extra_ms)),
            FaultSpec::RateStep { target, at_ms, bps } => {
                plan.at(t(*at_ms), *target, FaultAction::Rate(*bps))
            }
        }
    }

    /// Structural sanity: windows have extent, trains actually flap.
    /// (Recoverability is a *plan*-level property — see
    /// [`FaultPlan::restores_nominal`] — because raw rate steps only make
    /// sense in combination.)
    pub fn is_well_formed(&self) -> bool {
        match self {
            FaultSpec::Blackout { dur_ms, .. } => *dur_ms > 0,
            FaultSpec::FlapTrain {
                flaps,
                down_ms,
                up_ms,
                ..
            } => *flaps > 0 && *down_ms > 0 && *up_ms > 0,
            FaultSpec::BurstLoss { dur_ms, .. } => *dur_ms > 0,
            FaultSpec::BandwidthCollapse {
                hold_ms, step_ms, ..
            } => *hold_ms > 0 && *step_ms > 0,
            FaultSpec::RttSpike {
                dur_ms, extra_ms, ..
            } => *dur_ms > 0 && *extra_ms > 0,
            FaultSpec::Handover { gap_ms, .. } => *gap_ms > 0,
            FaultSpec::RrcStall {
                dur_ms, extra_ms, ..
            } => *dur_ms > 0 && *extra_ms > 0,
            FaultSpec::RateStep { .. } => true,
        }
    }

    /// Short label for reports and shrunk-repro summaries.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::Blackout { .. } => "blackout",
            FaultSpec::FlapTrain { .. } => "flap_train",
            FaultSpec::BurstLoss { .. } => "burst_loss",
            FaultSpec::BandwidthCollapse { .. } => "bandwidth_collapse",
            FaultSpec::RttSpike { .. } => "rtt_spike",
            FaultSpec::Handover { .. } => "handover",
            FaultSpec::RrcStall { .. } => "rrc_stall",
            FaultSpec::RateStep { .. } => "rate_step",
        }
    }
}

/// Expand a list of primitives into one pre-sorted-on-demand [`FaultPlan`].
pub fn expand(specs: &[FaultSpec]) -> FaultPlan {
    specs
        .iter()
        .fold(FaultPlan::new(), |plan, spec| spec.apply(plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_expand_like_the_builders() {
        let spec = vec![
            FaultSpec::Blackout {
                target: FaultTarget::Wifi,
                from_ms: 5_000,
                dur_ms: 8_000,
            },
            FaultSpec::RrcStall {
                at_ms: 9_000,
                dur_ms: 2_000,
                extra_ms: 150,
            },
        ];
        let by_spec = expand(&spec).into_events();
        let by_builder = FaultPlan::new()
            .blackout(
                FaultTarget::Wifi,
                SimTime::from_secs(5),
                SimDuration::from_secs(8),
            )
            .rrc_stall(
                SimTime::from_secs(9),
                SimDuration::from_secs(2),
                SimDuration::from_millis(150),
            )
            .into_events();
        assert_eq!(by_spec, by_builder);
    }

    #[test]
    fn self_restoring_primitives_restore() {
        let specs = vec![
            FaultSpec::Blackout {
                target: FaultTarget::Cellular,
                from_ms: 1_000,
                dur_ms: 500,
            },
            FaultSpec::BurstLoss {
                target: FaultTarget::Wifi,
                from_ms: 2_000,
                dur_ms: 3_000,
                ge: GeParams {
                    p_good_to_bad: 0.05,
                    p_bad_to_good: 0.25,
                    loss_good: 0.0,
                    loss_bad: 0.7,
                },
            },
            FaultSpec::BandwidthCollapse {
                target: FaultTarget::Core,
                from_ms: 4_000,
                hold_ms: 1_000,
                collapsed_bps: 0,
                ramp_bps: vec![1_000_000],
                step_ms: 500,
            },
        ];
        assert!(expand(&specs).restores_nominal());
    }

    #[test]
    fn dangling_rate_step_does_not_restore() {
        let specs = vec![FaultSpec::RateStep {
            target: FaultTarget::Wifi,
            at_ms: 3_000,
            bps: Some(2_000_000),
        }];
        let plan = expand(&specs);
        assert!(!plan.restores_nominal());
        assert!(plan.recovered_at().is_none());
        // Closing the sequence with a restore step makes it recoverable.
        let closed = expand(&[
            specs[0].clone(),
            FaultSpec::RateStep {
                target: FaultTarget::Wifi,
                at_ms: 6_000,
                bps: None,
            },
        ]);
        assert!(closed.restores_nominal());
        assert_eq!(closed.recovered_at(), Some(SimTime::from_secs(6)));
    }

    #[test]
    fn round_trips_through_json() {
        let specs = vec![
            FaultSpec::Handover {
                at_ms: 9_000,
                gap_ms: 4_000,
            },
            FaultSpec::RateStep {
                target: FaultTarget::Wifi,
                at_ms: 3_000,
                bps: None,
            },
        ];
        let json = serde_json::to_string(&specs).unwrap();
        let back: Vec<FaultSpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, specs);
    }
}
