//! The fault injector: replays a [`FaultPlan`] against any surface.
//!
//! The injector is deliberately dumb: it holds the pre-expanded,
//! time-sorted event list and, on each [`FaultInjector::poll`], applies
//! every event that has come due to the given [`FaultSurface`]. It draws no
//! randomness and keeps no state beyond a cursor, so the fault timeline is
//! identical across runs by construction. Hosts treat
//! [`FaultInjector::next_deadline`] like any other timer source.

use crate::plan::{FaultAction, FaultEvent, FaultPlan, FaultTarget};
use emptcp_phy::LossModel;
use emptcp_sim::{SimDuration, SimTime};
use emptcp_telemetry::{TelemetryScope, TraceEvent};

/// What a fault plan can mutate. Implemented by the experiment host (which
/// owns real [`emptcp_phy::Link`]s and the WiFi association) and by the
/// chaos-test rigs in [`crate::testnet`]. Restorative calls pass `None`,
/// meaning "back to nominal" — the surface knows its own nominal values.
pub trait FaultSurface {
    /// Bring the interface up or down, *with* link-layer notification (the
    /// stack learns immediately, as it does for a real de-association).
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool);
    /// Override the serialization rate, or restore nominal. `Some(0)` is a
    /// silent blackhole: no link-layer notification, detection is the
    /// transport's problem.
    fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>);
    /// Override the channel loss model, or restore nominal.
    fn set_loss(&mut self, now: SimTime, target: FaultTarget, model: Option<LossModel>);
    /// Add one-way extra delay, or remove it.
    fn set_extra_delay(&mut self, now: SimTime, target: FaultTarget, extra: Option<SimDuration>);
}

/// Replays a plan's events in order as simulation time passes.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    next: usize,
    scope: TelemetryScope,
}

impl FaultInjector {
    /// An injector for the given plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            events: plan.into_events(),
            next: 0,
            scope: TelemetryScope::disabled(),
        }
    }

    /// Attach a telemetry scope; every applied fault emits
    /// [`TraceEvent::FaultInjected`].
    pub fn set_telemetry(&mut self, scope: TelemetryScope) {
        self.scope = scope;
    }

    /// When the next unapplied fault fires, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// True once every event has been applied.
    pub fn finished(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Apply every event due at or before `now`; returns how many fired.
    pub fn poll(&mut self, now: SimTime, surface: &mut dyn FaultSurface) -> usize {
        let mut fired = 0;
        while let Some(&event) = self.events.get(self.next) {
            if event.at > now {
                break;
            }
            self.next += 1;
            fired += 1;
            self.apply(now, event, surface);
        }
        fired
    }

    fn apply(&mut self, now: SimTime, event: FaultEvent, surface: &mut dyn FaultSurface) {
        match event.action {
            FaultAction::IfaceDown => surface.set_iface_up(now, event.target, false),
            FaultAction::IfaceUp => surface.set_iface_up(now, event.target, true),
            FaultAction::Rate(bps) => surface.set_rate(now, event.target, bps),
            FaultAction::Loss(model) => surface.set_loss(now, event.target, model),
            FaultAction::ExtraDelay(extra) => surface.set_extra_delay(now, event.target, extra),
        }
        self.scope.emit(now, |_| TraceEvent::FaultInjected {
            target: event.target.label(),
            action: event.action.describe(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct RecordingSurface {
        calls: Vec<(SimTime, String)>,
    }

    impl FaultSurface for RecordingSurface {
        fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
            self.calls
                .push((now, format!("{}:up={}", target.label(), up)));
        }
        fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
            self.calls
                .push((now, format!("{}:rate={:?}", target.label(), rate_bps)));
        }
        fn set_loss(&mut self, now: SimTime, target: FaultTarget, model: Option<LossModel>) {
            self.calls
                .push((now, format!("{}:loss={}", target.label(), model.is_some())));
        }
        fn set_extra_delay(
            &mut self,
            now: SimTime,
            target: FaultTarget,
            extra: Option<SimDuration>,
        ) {
            self.calls
                .push((now, format!("{}:delay={:?}", target.label(), extra)));
        }
    }

    #[test]
    fn applies_due_events_in_order() {
        let plan = FaultPlan::new()
            .blackout(
                FaultTarget::Wifi,
                SimTime::from_secs(2),
                SimDuration::from_secs(3),
            )
            .rtt_spike(
                FaultTarget::Cellular,
                SimTime::from_secs(1),
                SimDuration::from_secs(10),
                SimDuration::from_millis(200),
            );
        let mut inj = FaultInjector::new(plan);
        let mut surface = RecordingSurface::default();

        assert_eq!(inj.next_deadline(), Some(SimTime::from_secs(1)));
        assert_eq!(inj.poll(SimTime::from_millis(500), &mut surface), 0);
        // Polling at 2 s applies both the 1 s spike and the 2 s down.
        assert_eq!(inj.poll(SimTime::from_secs(2), &mut surface), 2);
        assert!(surface.calls[0].1.starts_with("cellular:delay"));
        assert_eq!(surface.calls[1].1, "wifi:up=false");
        // Re-polling at the same instant is idempotent.
        assert_eq!(inj.poll(SimTime::from_secs(2), &mut surface), 0);
        assert!(!inj.finished());
        assert_eq!(inj.poll(SimTime::from_secs(60), &mut surface), 2);
        assert!(inj.finished());
        assert_eq!(inj.next_deadline(), None);
    }
}
