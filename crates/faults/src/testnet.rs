//! Shared chaos-test network rigs.
//!
//! The TCP and MPTCP chaos suites used to carry their own copy-pasted
//! "lossy network" (an event queue plus per-path drop/dup/jitter draws).
//! This module is the single shared implementation: a [`ChaosNet`] of
//! [`ChaosPath`]s for segment transport, and an end-to-end [`MpChaosRig`]
//! that pumps a full MPTCP connection pair through it and implements
//! [`FaultSurface`], so a [`FaultPlan`] can be replayed against a live
//! transfer in a few lines of test code.
//!
//! Randomness discipline: the rig seed is split with
//! [`SimRng::fork_labeled`] into independent streams (`"traffic"` for the
//! channel draws; callers fork more, e.g. `"faults"`, for their own use),
//! so adding a new consumer never shifts an existing stream.
//!
//! Fidelity note: paths here are delay-based, not rate-serialized — the
//! full queueing [`emptcp_phy::Link`] model lives in the experiment host.
//! Consequently [`FaultSurface::set_rate`] on a rig only distinguishes
//! `Some(0)` (a silent blackhole) from everything else (path passes
//! traffic); intermediate rates are a no-op here.

use crate::injector::{FaultInjector, FaultSurface};
use crate::plan::{FaultPlan, FaultTarget};
use emptcp_mptcp::{MpConnection, Role, SubflowId};
use emptcp_phy::{IfaceKind, LossModel, LossProcess};
use emptcp_sim::{EventQueue, SimDuration, SimRng, SimTime};
use emptcp_tcp::{Segment, TcpConfig};

/// One bidirectional path through the chaos network.
#[derive(Clone, Debug)]
pub struct ChaosPath {
    /// Channel loss process (shared semantics with [`emptcp_phy::Link`]).
    pub loss: LossProcess,
    /// The scenario's nominal loss model, restored by `set_loss(None)`.
    nominal_loss: LossModel,
    /// Probability an accepted packet is duplicated.
    pub dup: f64,
    /// Base one-way delay.
    pub base_delay: SimDuration,
    /// Fault-injected extra one-way delay.
    pub extra_delay: SimDuration,
    /// Uniform random extra delay up to this many ms (reordering source).
    pub jitter_ms: u64,
    /// Administrative up/down (fault-injected blackouts).
    up: bool,
    /// Silent rate-zero blackhole (no link-layer notification).
    rate_zero: bool,
}

impl ChaosPath {
    /// A path with i.i.d. loss, a base delay and a jitter bound.
    pub fn new(loss: f64, base_delay: SimDuration, jitter_ms: u64) -> ChaosPath {
        let model = LossModel::Bernoulli(loss);
        ChaosPath {
            loss: LossProcess::new(model),
            nominal_loss: model,
            dup: 0.0,
            base_delay,
            extra_delay: SimDuration::ZERO,
            jitter_ms,
            up: true,
            rate_zero: false,
        }
    }

    /// Add a duplication probability.
    pub fn with_dup(mut self, dup: f64) -> ChaosPath {
        self.dup = dup;
        self
    }

    /// Whether the path currently passes traffic at all.
    pub fn passes_traffic(&self) -> bool {
        self.up && !self.rate_zero
    }

    /// The scenario's nominal loss model (what `set_loss(None)` restores).
    pub fn nominal_loss(&self) -> LossModel {
        self.nominal_loss
    }

    /// Administrative up/down. Out-of-crate fault surfaces (the live
    /// backend's shaped transports) apply [`FaultAction::IfaceDown`] /
    /// [`FaultAction::IfaceUp`](crate::FaultAction) through this.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Engage or release the silent rate-zero blackhole (the delay-based
    /// rendering of [`FaultAction::Rate`](crate::FaultAction)`(Some(0))`).
    pub fn set_rate_zero(&mut self, rate_zero: bool) {
        self.rate_zero = rate_zero;
    }
}

/// A multi-path lossy, jittery, duplicating network between two endpoints.
#[derive(Debug)]
pub struct ChaosNet {
    queue: EventQueue<(bool, u8, Segment)>,
    /// The seed RNG; never drawn from directly, only forked by label.
    root: SimRng,
    /// The `"traffic"` stream: loss, duplication and jitter draws.
    rng: SimRng,
    /// The paths, indexed by [`FaultTarget::path_index`] convention.
    pub paths: Vec<ChaosPath>,
}

impl ChaosNet {
    /// A network over the given paths, seeded deterministically.
    pub fn new(seed: u64, paths: Vec<ChaosPath>) -> ChaosNet {
        let root = SimRng::new(seed);
        let rng = root.fork_labeled("traffic");
        ChaosNet {
            queue: EventQueue::new(),
            root,
            rng,
            paths,
        }
    }

    /// An independent RNG stream derived from the rig seed; drawing from it
    /// never perturbs the traffic stream (or any other fork).
    pub fn fork(&self, label: &str) -> SimRng {
        self.root.fork_labeled(label)
    }

    /// Offer a segment to `path` at `now`, heading to the client or server.
    pub fn send(&mut self, now: SimTime, to_client: bool, path: u8, seg: Segment) {
        let p = &mut self.paths[path as usize];
        if !p.passes_traffic() || p.loss.lost(&mut self.rng) {
            return;
        }
        let copies = if p.dup > 0.0 && self.rng.chance(p.dup) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let p = &self.paths[path as usize];
            let jitter = SimDuration::from_millis(self.rng.below(p.jitter_ms + 1));
            self.queue.schedule(
                now + p.base_delay + p.extra_delay + jitter,
                (to_client, path, seg),
            );
        }
    }

    /// When the next packet lands, if any is in flight.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The next in-flight packet: `(arrival, (to_client, path, segment))`.
    pub fn pop(&mut self) -> Option<(SimTime, (bool, u8, Segment))> {
        self.queue.pop()
    }
}

/// A complete two-host MPTCP rig over a [`ChaosNet`]: one subflow per
/// path (path 0 is WiFi, later paths cellular), an optional attached
/// [`FaultInjector`], and the event-loop pump shared by every chaos and
/// fault test.
pub struct MpChaosRig {
    /// The network between the two connections.
    pub net: ChaosNet,
    /// The data receiver.
    pub client: MpConnection,
    /// The data sender.
    pub server: MpConnection,
    /// The attached fault injector, if any.
    pub injector: Option<FaultInjector>,
    /// Deliver link-layer up/down notifications to both stacks on
    /// [`FaultSurface::set_iface_up`] (a real de-association is visible to
    /// the kernel). Disable to force detection through RTOs alone.
    pub notify_link_down: bool,
    /// Absolute simulation cut-off for [`MpChaosRig::run`].
    pub wall_limit: SimTime,
}

impl MpChaosRig {
    /// A rig with one subflow per path on both ends.
    pub fn new(seed: u64, paths: Vec<ChaosPath>) -> MpChaosRig {
        let mut client = MpConnection::new(Role::Client, TcpConfig::default());
        let mut server = MpConnection::new(Role::Server, TcpConfig::default());
        for idx in 0..paths.len() {
            let iface = if idx == 0 {
                IfaceKind::Wifi
            } else {
                IfaceKind::CellularLte
            };
            client.add_subflow(SimTime::ZERO, iface);
            server.add_subflow(SimTime::ZERO, iface);
        }
        MpChaosRig {
            net: ChaosNet::new(seed, paths),
            client,
            server,
            injector: None,
            notify_link_down: true,
            wall_limit: SimTime::from_secs(900),
        }
    }

    /// Attach a fault plan to replay during [`MpChaosRig::run`].
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Drain one side's pending transmissions into the network.
    pub fn transmit(&mut self, now: SimTime, from_client: bool) {
        loop {
            let emission = if from_client {
                self.client.poll_transmit(now)
            } else {
                self.server.poll_transmit(now)
            };
            let Some((sf, seg)) = emission else { break };
            self.net.send(now, !from_client, sf.0, seg);
        }
    }

    fn poll_faults(&mut self, now: SimTime) {
        if let Some(mut inj) = self.injector.take() {
            inj.poll(now, self);
            self.injector = Some(inj);
        }
    }

    /// Run until the client has `total` bytes, progress stops, or the wall
    /// limit is hit; returns the bytes delivered.
    pub fn run(&mut self, total: u64) -> u64 {
        self.server.write(total);
        self.poll_faults(SimTime::ZERO);
        self.transmit(SimTime::ZERO, true);
        self.transmit(SimTime::ZERO, false);
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > 3_000_000 {
                break;
            }
            let timer = self
                .client
                .next_deadline()
                .into_iter()
                .chain(self.server.next_deadline())
                .chain(self.injector.as_ref().and_then(|i| i.next_deadline()))
                .min();
            let next_packet = self.net.peek_time();
            let now = match (next_packet, timer) {
                (Some(p), Some(t)) => p.min(t),
                (Some(p), None) => p,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            if now > self.wall_limit {
                break;
            }
            self.poll_faults(now);
            if Some(now) == next_packet {
                let (_, (to_client, path, seg)) = self.net.pop().expect("peeked");
                if to_client {
                    self.client.on_segment(now, SubflowId(path), seg);
                } else {
                    self.server.on_segment(now, SubflowId(path), seg);
                }
            }
            self.client.on_deadline(now);
            self.server.on_deadline(now);
            self.transmit(now, true);
            self.transmit(now, false);
            if self.client.bytes_delivered() >= total {
                break;
            }
        }
        self.client.bytes_delivered()
    }
}

impl MpChaosRig {
    /// Paths a fault target maps onto: a single path for the interface
    /// targets, every path for the shared core (a congested core hits all
    /// traffic crossing it). Out-of-range single targets map to nothing.
    fn target_paths(&self, target: FaultTarget) -> std::ops::Range<usize> {
        match target.path_index() {
            Some(idx) if idx < self.net.paths.len() => idx..idx + 1,
            Some(_) => 0..0,
            None => 0..self.net.paths.len(),
        }
    }
}

impl FaultSurface for MpChaosRig {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        for idx in self.target_paths(target) {
            self.net.paths[idx].up = up;
            if self.notify_link_down {
                let id = SubflowId(idx as u8);
                self.client.set_subflow_link_up(now, id, up);
                self.server.set_subflow_link_up(now, id, up);
            }
        }
    }

    fn set_rate(&mut self, _now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        // Delay-based paths have no serializer: only the rate-zero
        // blackhole is meaningful here (see the module docs).
        for idx in self.target_paths(target) {
            self.net.paths[idx].rate_zero = rate_bps == Some(0);
        }
    }

    fn set_loss(&mut self, _now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        for idx in self.target_paths(target) {
            let path = &mut self.net.paths[idx];
            path.loss.set_model(model.unwrap_or(path.nominal_loss));
        }
    }

    fn set_extra_delay(&mut self, _now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        for idx in self.target_paths(target) {
            self.net.paths[idx].extra_delay = extra.unwrap_or(SimDuration::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> Vec<ChaosPath> {
        vec![
            ChaosPath::new(0.0, SimDuration::from_millis(12), 0),
            ChaosPath::new(0.0, SimDuration::from_millis(35), 0),
        ]
    }

    #[test]
    fn clean_network_delivers_exactly() {
        let mut rig = MpChaosRig::new(1, two_paths());
        assert_eq!(rig.run(256 << 10), 256 << 10);
    }

    #[test]
    fn forked_streams_are_independent_of_extra_consumers() {
        let net_a = ChaosNet::new(77, two_paths());
        let net_b = ChaosNet::new(77, two_paths());
        // Net B hands out a fault stream before traffic runs; the traffic
        // stream must be unaffected.
        let mut faults_rng = net_b.fork("faults");
        let _ = faults_rng.below(1000);
        let mut a = net_a.rng.clone();
        let mut b = net_b.rng.clone();
        for _ in 0..64 {
            assert_eq!(a.below(u64::MAX), b.below(u64::MAX));
        }
    }

    #[test]
    fn downed_path_passes_nothing() {
        let mut rig = MpChaosRig::new(3, two_paths());
        rig.notify_link_down = false;
        rig.set_iface_up(SimTime::ZERO, FaultTarget::Cellular, false);
        assert_eq!(rig.run(64 << 10), 64 << 10);
        assert_eq!(rig.client.delivered_by_iface(IfaceKind::CellularLte), 0);
    }
}
