#![warn(missing_docs)]
//! Deterministic fault injection for the eMPTCP stack.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. This crate makes failures *first-class and reproducible*:
//!
//! * [`plan`] — a [`FaultPlan`] scripts timestamped [`FaultEvent`]s from
//!   composable primitives: interface blackouts, link-flap trains,
//!   Gilbert–Elliott burst-loss windows, bandwidth collapses with staged
//!   recovery, RTT spikes, WiFi→cellular handovers, and cellular RRC
//!   stalls. Plans are pre-expanded pure data: no randomness survives past
//!   build time.
//! * [`injector`] — a [`FaultInjector`] replays a plan against anything
//!   implementing [`FaultSurface`] (the experiment host's real links, or
//!   the test rigs here), emitting a telemetry event per applied fault.
//! * [`spec`] — declarative [`FaultSpec`] primitives, the serializable
//!   vocabulary the `.scenario` corpus files speak; a spec list expands to
//!   the same pre-sorted event stream the plan builders produce.
//! * [`scenarios`] — a named library of failure patterns (`ap-vanish`,
//!   `lte-tunnel`, `flappy-wifi`, `burst-loss-storm`, `handover-walk`)
//!   shared by the CLI and CI, loaded from the committed `.scenario`
//!   corpus files rather than hand-written constructors.
//! * [`testnet`] — the chaos-test network rigs shared by the TCP and MPTCP
//!   suites, with labelled RNG stream-splitting so fault draws never
//!   perturb traffic draws.
//!
//! Everything downstream of a seed is deterministic: the same seed and the
//! same plan produce byte-identical telemetry traces, which is what lets
//! CI assert on resilience numbers instead of eyeballing them.

pub mod injector;
pub mod plan;
pub mod scenarios;
pub mod spec;
pub mod testnet;

pub use injector::{FaultInjector, FaultSurface};
pub use plan::{FaultAction, FaultEvent, FaultPlan, FaultTarget};
pub use spec::FaultSpec;
pub use testnet::{ChaosNet, ChaosPath, MpChaosRig};
