//! Fault plans: a deterministic script of timestamped network faults.
//!
//! A [`FaultPlan`] is built once, up front, from composable primitives
//! (blackouts, flap trains, burst-loss windows, bandwidth collapses, RTT
//! spikes, handovers, RRC stalls) and then *pre-expanded* into a flat,
//! time-sorted list of [`FaultEvent`]s. All randomness, if any, happens at
//! build time in the caller's RNG stream; the plan itself — and therefore
//! the injector driving it — is pure data. Same plan + same seed ⇒ the
//! same faults at the same instants, byte for byte.

use emptcp_phy::{GeParams, LossModel};
use emptcp_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which interface a fault applies to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The WiFi path (path index 0 in the test rigs).
    Wifi,
    /// The cellular path (path index 1 in the test rigs).
    Cellular,
    /// A shared core bottleneck that every path traverses. Surfaces with
    /// per-path state apply the fault to all paths at once; the network
    /// fabric applies it to its designated bottleneck ports.
    Core,
}

impl FaultTarget {
    /// Stable label for trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultTarget::Wifi => "wifi",
            FaultTarget::Cellular => "cellular",
            FaultTarget::Core => "core",
        }
    }

    /// Path index convention used by the test rigs (WiFi first). `None`
    /// means the target is not a single path (the shared core).
    pub fn path_index(self) -> Option<usize> {
        match self {
            FaultTarget::Wifi => Some(0),
            FaultTarget::Cellular => Some(1),
            FaultTarget::Core => None,
        }
    }
}

/// One atomic state change applied to a target interface. Restorative
/// variants carry `None`, meaning "back to the scenario's nominal value" —
/// the surface, not the plan, knows what nominal is.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum FaultAction {
    /// Take the interface down (de-association, radio loss).
    IfaceDown,
    /// Bring the interface back up.
    IfaceUp,
    /// Override the serialization rate (`Some(bps)`), or restore the
    /// nominal rate (`None`). `Some(0)` is a silent blackhole: packets die
    /// without any link-layer notification, unlike [`FaultAction::IfaceDown`].
    Rate(Option<u64>),
    /// Override the channel loss model, or restore the nominal one.
    Loss(Option<LossModel>),
    /// Add one-way extra propagation delay, or remove it.
    ExtraDelay(Option<SimDuration>),
}

impl FaultAction {
    /// Human-readable form for `FaultInjected` trace events.
    pub fn describe(&self) -> String {
        match self {
            FaultAction::IfaceDown => "iface_down".to_string(),
            FaultAction::IfaceUp => "iface_up".to_string(),
            FaultAction::Rate(Some(bps)) => format!("rate={bps}"),
            FaultAction::Rate(None) => "rate=nominal".to_string(),
            FaultAction::Loss(Some(LossModel::Bernoulli(p))) => format!("loss={p}"),
            FaultAction::Loss(Some(LossModel::GilbertElliott(g))) => format!(
                "loss=ge(p01={},p10={},pb={})",
                g.p_good_to_bad, g.p_bad_to_good, g.loss_bad
            ),
            FaultAction::Loss(None) => "loss=nominal".to_string(),
            FaultAction::ExtraDelay(Some(d)) => format!("extra_delay_ns={}", d.as_nanos()),
            FaultAction::ExtraDelay(None) => "extra_delay=none".to_string(),
        }
    }
}

/// A single scheduled fault.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// Which interface it hits.
    pub target: FaultTarget,
    /// What happens.
    pub action: FaultAction,
}

/// An ordered script of faults. Builder methods append pre-expanded event
/// sequences; [`FaultPlan::into_events`] hands the injector a stable
/// time-sort (ties keep insertion order, so "down then up at the same
/// instant" behaves as written).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (useful as a fault-free baseline).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append one raw event.
    pub fn at(mut self, at: SimTime, target: FaultTarget, action: FaultAction) -> FaultPlan {
        self.events.push(FaultEvent { at, target, action });
        self
    }

    /// Total interface blackout: down at `from`, back up `dur` later.
    pub fn blackout(self, target: FaultTarget, from: SimTime, dur: SimDuration) -> FaultPlan {
        self.at(from, target, FaultAction::IfaceDown)
            .at(from + dur, target, FaultAction::IfaceUp)
    }

    /// A train of `flaps` short blackouts: down for `down`, up for `up`,
    /// repeated back to back starting at `from`.
    pub fn flap_train(
        mut self,
        target: FaultTarget,
        from: SimTime,
        flaps: u32,
        down: SimDuration,
        up: SimDuration,
    ) -> FaultPlan {
        let mut t = from;
        for _ in 0..flaps {
            self = self.blackout(target, t, down);
            t = t + down + up;
        }
        self
    }

    /// A Gilbert–Elliott burst-loss window: the channel turns bursty at
    /// `from` and recovers to nominal `dur` later.
    pub fn burst_loss(
        self,
        target: FaultTarget,
        from: SimTime,
        dur: SimDuration,
        ge: GeParams,
    ) -> FaultPlan {
        self.at(
            from,
            target,
            FaultAction::Loss(Some(LossModel::GilbertElliott(ge))),
        )
        .at(from + dur, target, FaultAction::Loss(None))
    }

    /// Bandwidth collapse with a staged recovery: the rate drops to
    /// `collapsed_bps` at `from`, holds for `hold`, then climbs through
    /// each rate in `recovery_ramp` (one step every `step`) before
    /// restoring the nominal rate.
    pub fn bandwidth_collapse(
        mut self,
        target: FaultTarget,
        from: SimTime,
        hold: SimDuration,
        collapsed_bps: u64,
        recovery_ramp: &[u64],
        step: SimDuration,
    ) -> FaultPlan {
        self = self.at(from, target, FaultAction::Rate(Some(collapsed_bps)));
        let mut t = from + hold;
        for &bps in recovery_ramp {
            self = self.at(t, target, FaultAction::Rate(Some(bps)));
            t += step;
        }
        self.at(t, target, FaultAction::Rate(None))
    }

    /// An RTT spike: `extra` one-way delay from `from` for `dur`.
    pub fn rtt_spike(
        self,
        target: FaultTarget,
        from: SimTime,
        dur: SimDuration,
        extra: SimDuration,
    ) -> FaultPlan {
        self.at(from, target, FaultAction::ExtraDelay(Some(extra)))
            .at(from + dur, target, FaultAction::ExtraDelay(None))
    }

    /// A WiFi→cellular handover: the WiFi association is lost for `gap`
    /// (scan + re-association walk), during which traffic must survive on
    /// cellular alone.
    pub fn handover(self, at: SimTime, gap: SimDuration) -> FaultPlan {
        self.blackout(FaultTarget::Wifi, at, gap)
    }

    /// A cellular RRC promotion stall: the radio sits in a signalling
    /// limbo, adding `extra` one-way delay to everything for `dur`.
    pub fn rrc_stall(self, at: SimTime, dur: SimDuration, extra: SimDuration) -> FaultPlan {
        self.rtt_spike(FaultTarget::Cellular, at, dur, extra)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled event, if any.
    pub fn end_time(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }

    /// The scheduled events in insertion order (un-sorted).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events in stable time order (the injector's feed).
    pub fn into_events(mut self) -> Vec<FaultEvent> {
        self.events.sort_by_key(|e| e.at);
        self.events
    }

    /// Replay the plan against an abstract per-target state machine and
    /// report whether every perturbation is undone by the end: all
    /// interfaces back up, rates/loss/extra-delay back to nominal. A plan
    /// for which this holds is *recoverable* — once the last event fires
    /// the network is exactly what the scenario configured, so end-of-run
    /// oracles (exact delivery, no stuck subflows) are entitled to their
    /// assertions.
    pub fn restores_nominal(&self) -> bool {
        self.final_states().iter().all(|s| s.is_nominal())
    }

    /// The earliest instant from which the network is nominal for the rest
    /// of the plan (`None` for an empty plan; equals [`FaultPlan::end_time`]
    /// when the last event is itself restorative).
    pub fn recovered_at(&self) -> Option<SimTime> {
        if !self.restores_nominal() {
            return None;
        }
        self.end_time()
    }

    fn final_states(&self) -> [TargetState; 3] {
        let events = self.clone().into_events();
        let mut states = [TargetState::default(); 3];
        for e in &events {
            let idx = match e.target {
                FaultTarget::Wifi => 0,
                FaultTarget::Cellular => 1,
                FaultTarget::Core => 2,
            };
            states[idx].apply(e.action);
        }
        states
    }
}

/// Folded end-state of one fault target after a plan replay.
#[derive(Clone, Copy, Default)]
struct TargetState {
    down: bool,
    rate_override: bool,
    loss_override: bool,
    delay_override: bool,
}

impl TargetState {
    fn apply(&mut self, action: FaultAction) {
        match action {
            FaultAction::IfaceDown => self.down = true,
            FaultAction::IfaceUp => self.down = false,
            FaultAction::Rate(r) => self.rate_override = r.is_some(),
            FaultAction::Loss(l) => self.loss_override = l.is_some(),
            FaultAction::ExtraDelay(d) => self.delay_override = d.is_some(),
        }
    }

    fn is_nominal(self) -> bool {
        !self.down && !self.rate_override && !self.loss_override && !self.delay_override
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_expands_to_down_then_up() {
        let events = FaultPlan::new()
            .blackout(
                FaultTarget::Wifi,
                SimTime::from_secs(5),
                SimDuration::from_secs(3),
            )
            .into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, SimTime::from_secs(5));
        assert_eq!(events[0].action, FaultAction::IfaceDown);
        assert_eq!(events[1].at, SimTime::from_secs(8));
        assert_eq!(events[1].action, FaultAction::IfaceUp);
    }

    #[test]
    fn flap_train_alternates() {
        let events = FaultPlan::new()
            .flap_train(
                FaultTarget::Wifi,
                SimTime::from_secs(1),
                3,
                SimDuration::from_millis(500),
                SimDuration::from_millis(1500),
            )
            .into_events();
        assert_eq!(events.len(), 6);
        // Third flap goes down at 1 s + 2 × 2 s = 5 s.
        assert_eq!(events[4].at, SimTime::from_secs(5));
        assert_eq!(events[4].action, FaultAction::IfaceDown);
        assert_eq!(events[5].at, SimTime::from_millis(5500));
    }

    #[test]
    fn events_sort_stably_by_time() {
        let t = SimTime::from_secs(2);
        let events = FaultPlan::new()
            .at(t, FaultTarget::Wifi, FaultAction::IfaceDown)
            .at(
                SimTime::from_secs(1),
                FaultTarget::Cellular,
                FaultAction::IfaceDown,
            )
            .at(t, FaultTarget::Wifi, FaultAction::IfaceUp)
            .into_events();
        assert_eq!(events[0].target, FaultTarget::Cellular);
        // Insertion order preserved at the tied timestamp.
        assert_eq!(events[1].action, FaultAction::IfaceDown);
        assert_eq!(events[2].action, FaultAction::IfaceUp);
    }

    #[test]
    fn bandwidth_collapse_ramps_back() {
        let events = FaultPlan::new()
            .bandwidth_collapse(
                FaultTarget::Wifi,
                SimTime::from_secs(10),
                SimDuration::from_secs(5),
                500_000,
                &[2_000_000, 6_000_000],
                SimDuration::from_secs(1),
            )
            .into_events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].action, FaultAction::Rate(Some(500_000)));
        assert_eq!(events[1].at, SimTime::from_secs(15));
        assert_eq!(events[1].action, FaultAction::Rate(Some(2_000_000)));
        assert_eq!(events[3].at, SimTime::from_secs(17));
        assert_eq!(events[3].action, FaultAction::Rate(None));
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(FaultAction::IfaceDown.describe(), "iface_down");
        assert_eq!(FaultAction::Rate(Some(1000)).describe(), "rate=1000");
        assert_eq!(FaultAction::Loss(None).describe(), "loss=nominal");
    }
}
