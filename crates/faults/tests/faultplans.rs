//! End-to-end fault-plan properties.
//!
//! The core promise of the fault subsystem: *no generated fault plan can
//! make MPTCP corrupt the byte stream*. Faults may slow a transfer down,
//! kill subflows, and force reinjection — but the client must always end
//! with exactly the bytes the server wrote, and the online invariant
//! observer must stay silent.

use emptcp_faults::plan::FaultAction;
use emptcp_faults::testnet::{ChaosPath, MpChaosRig};
use emptcp_faults::{FaultInjector, FaultPlan, FaultSurface, FaultTarget};
use emptcp_mptcp::SubflowId;
use emptcp_phy::{GeParams, IfaceKind, LossModel};
use emptcp_sim::{SimDuration, SimRng, SimTime};
use emptcp_telemetry::Telemetry;
use proptest::prelude::*;

fn two_paths() -> Vec<ChaosPath> {
    vec![
        ChaosPath::new(0.01, SimDuration::from_millis(12), 3),
        ChaosPath::new(0.02, SimDuration::from_millis(35), 3),
    ]
}

/// Draw a random-but-reproducible fault plan: 1–4 primitives with random
/// targets and timings, every one of which eventually restores the nominal
/// state (so a transfer can always finish after the storm passes).
fn gen_plan(rng: &mut SimRng) -> FaultPlan {
    let ms = SimDuration::from_millis;
    let mut plan = FaultPlan::new();
    let n = 1 + rng.below(4);
    for _ in 0..n {
        let target = if rng.chance(0.5) {
            FaultTarget::Wifi
        } else {
            FaultTarget::Cellular
        };
        let from = SimTime::from_millis(500 + rng.below(10_000));
        plan = match rng.below(5) {
            0 => plan.blackout(target, from, ms(200 + rng.below(4_000))),
            1 => plan.flap_train(
                target,
                from,
                1 + rng.below(3) as u32,
                ms(100 + rng.below(500)),
                ms(300 + rng.below(1_500)),
            ),
            2 => plan.burst_loss(
                target,
                from,
                ms(1_000 + rng.below(6_000)),
                GeParams {
                    p_good_to_bad: 0.02 + 0.08 * rng.below(100) as f64 / 100.0,
                    p_bad_to_good: 0.2,
                    loss_good: 0.0,
                    loss_bad: 0.5 + 0.4 * rng.below(100) as f64 / 100.0,
                },
            ),
            3 => plan.rtt_spike(
                target,
                from,
                ms(500 + rng.below(3_000)),
                ms(50 + rng.below(200)),
            ),
            // A silent rate-zero blackhole: no link-layer notification, so
            // only RTO-based failure detection can see it.
            _ => plan.at(from, target, FaultAction::Rate(Some(0))).at(
                from + ms(200 + rng.below(2_500)),
                target,
                FaultAction::Rate(None),
            ),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_fault_plans_preserve_exact_delivery(
        total_kb in 32u64..128,
        seed in 0u64..u64::MAX,
    ) {
        let total = total_kb << 10;
        let mut rig = MpChaosRig::new(seed, two_paths());
        let mut fault_rng = rig.net.fork("faults");
        rig.attach_faults(gen_plan(&mut fault_rng));
        let telemetry = Telemetry::builder().invariants(true).build();
        rig.client.set_telemetry(telemetry.scope(0));
        rig.server.set_telemetry(telemetry.scope(1));

        let delivered = rig.run(total);
        prop_assert_eq!(delivered, total, "byte stream gap under faults");
        let violations = telemetry.violations();
        prop_assert!(violations.is_empty(), "invariants violated: {violations:?}");
    }
}

/// The ISSUE's regression case: the only *active* subflow is blacked out
/// while a configured backup waits; the backup must be promoted and the
/// transfer must complete with recovery visible in the stats.
#[test]
fn blackout_of_only_active_subflow_with_backup_completes() {
    let mut rig = MpChaosRig::new(11, two_paths());
    rig.client.subflow_mut(SubflowId(1)).backup = true;
    rig.server.subflow_mut(SubflowId(1)).backup = true;
    rig.attach_faults(FaultPlan::new().blackout(
        FaultTarget::Wifi,
        SimTime::from_millis(500),
        SimDuration::from_secs(5),
    ));
    let total = 256 << 10;
    assert_eq!(rig.run(total), total);
    // The backup actually carried traffic during the blackout.
    assert!(
        rig.client.delivered_by_iface(IfaceKind::CellularLte) > 0,
        "backup never promoted into service"
    );
    let stats = rig.server.recovery_stats();
    assert!(stats.link_down_events >= 1, "{stats:?}");
    assert!(stats.backup_promotions >= 1, "{stats:?}");
    assert!(
        stats.worst_recovery_latency().is_some(),
        "recovery latency never measured: {stats:?}"
    );
}

/// A silent blackhole (no link-layer notification) must be caught by the
/// consecutive-RTO failure detector, and the subflow must be revived by
/// ack progress once the hole heals.
#[test]
fn silent_blackhole_detected_by_rto_threshold() {
    let mut rig = MpChaosRig::new(17, two_paths());
    rig.notify_link_down = false;
    rig.server.set_failure_threshold(2);
    rig.attach_faults(
        FaultPlan::new()
            .at(
                SimTime::from_millis(500),
                FaultTarget::Wifi,
                FaultAction::Rate(Some(0)),
            )
            .at(
                SimTime::from_secs(8),
                FaultTarget::Wifi,
                FaultAction::Rate(None),
            ),
    );
    let total = 512 << 10;
    assert_eq!(rig.run(total), total);
    let stats = rig.server.recovery_stats();
    assert!(stats.subflow_failures >= 1, "{stats:?}");
    assert!(stats.bytes_reinjected > 0, "{stats:?}");
}

/// Records every surface mutation so tests can compare the applied
/// sequence against the plan's pre-expanded event feed.
#[derive(Default)]
struct RecordingSurface {
    applied: Vec<(SimTime, String)>,
}

impl FaultSurface for RecordingSurface {
    fn set_iface_up(&mut self, now: SimTime, target: FaultTarget, up: bool) {
        self.applied
            .push((now, format!("{}:up={up}", target.label())));
    }
    fn set_rate(&mut self, now: SimTime, target: FaultTarget, rate_bps: Option<u64>) {
        self.applied
            .push((now, format!("{}:rate={rate_bps:?}", target.label())));
    }
    fn set_loss(&mut self, now: SimTime, target: FaultTarget, model: Option<LossModel>) {
        self.applied
            .push((now, format!("{}:loss={}", target.label(), model.is_some())));
    }
    fn set_extra_delay(&mut self, now: SimTime, target: FaultTarget, extra: Option<SimDuration>) {
        self.applied
            .push((now, format!("{}:delay={}", target.label(), extra.is_some())));
    }
}

/// Drive an injector in fixed ticks and return the applied action labels.
fn drain(plan: FaultPlan, tick: SimDuration, until: SimTime) -> Vec<String> {
    let mut inj = FaultInjector::new(plan);
    let mut surface = RecordingSurface::default();
    let mut now = SimTime::ZERO;
    while now <= until {
        inj.poll(now, &mut surface);
        now += tick;
    }
    assert!(inj.finished(), "events left unapplied at {until:?}");
    surface.applied.into_iter().map(|(_, s)| s).collect()
}

fn describe(event: &emptcp_faults::FaultEvent) -> String {
    match event.action {
        FaultAction::IfaceDown => format!("{}:up=false", event.target.label()),
        FaultAction::IfaceUp => format!("{}:up=true", event.target.label()),
        FaultAction::Rate(r) => format!("{}:rate={r:?}", event.target.label()),
        FaultAction::Loss(l) => format!("{}:loss={}", event.target.label(), l.is_some()),
        FaultAction::ExtraDelay(e) => format!("{}:delay={}", event.target.label(), e.is_some()),
    }
}

/// A blackout window *inside* a flap train on the same interface: the
/// cursor must apply the interleaved down/up events in exact expanded
/// order — even when one poll drains several due events — and the
/// overlapping windows must still fold back to nominal, so the transfer
/// recovers to exact delivery.
#[test]
fn blackout_inside_flap_train_applies_in_cursor_order_and_recovers() {
    let ms = SimDuration::from_millis;
    let plan = || {
        FaultPlan::new()
            .flap_train(
                FaultTarget::Wifi,
                SimTime::from_secs(1),
                4,
                ms(400),
                ms(600),
            )
            .blackout(FaultTarget::Wifi, SimTime::from_millis(1_700), ms(1_500))
    };

    // The blackout's window (1.7 s – 3.2 s) straddles three flaps; the
    // expanded feed must be time-sorted and the injector must replay it
    // one-for-one, including polls where several events are due at once.
    let expected: Vec<String> = plan().into_events().iter().map(describe).collect();
    let times: Vec<SimTime> = plan().into_events().iter().map(|e| e.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "feed not sorted");
    // Coarse 500 ms polling forces multi-event drains.
    assert_eq!(drain(plan(), ms(500), SimTime::from_secs(6)), expected);

    // Overlap still folds to nominal, so exact delivery is owed.
    assert!(plan().restores_nominal());
    assert_eq!(plan().recovered_at(), plan().end_time());
    let mut rig = MpChaosRig::new(29, two_paths());
    rig.attach_faults(plan());
    let total = 128 << 10;
    assert_eq!(
        rig.run(total),
        total,
        "byte stream gap after nested windows"
    );
}

/// A WiFi→cellular handover that lands in the middle of a cellular RRC
/// stall: both interfaces are degraded at once (WiFi gone, cellular
/// delay-inflated), which is the worst case for the scheduler. The events
/// interleave across targets in time order, and the stream must still
/// arrive exactly with the WiFi loss visible in the recovery stats.
#[test]
fn handover_during_rrc_stall_interleaves_targets_and_delivers() {
    let ms = SimDuration::from_millis;
    let plan = || {
        FaultPlan::new()
            .rrc_stall(
                SimTime::from_millis(200),
                SimDuration::from_secs(3),
                ms(150),
            )
            .handover(SimTime::from_millis(500), ms(800))
    };

    let events = plan().into_events();
    let applied: Vec<String> = events.iter().map(describe).collect();
    assert_eq!(
        applied,
        vec![
            "cellular:delay=true",  // 0.2 s  stall begins
            "wifi:up=false",        // 0.5 s  handover inside the stall
            "wifi:up=true",         // 1.3 s  re-associated, stall ongoing
            "cellular:delay=false", // 3.2 s  stall ends
        ]
    );
    assert_eq!(drain(plan(), ms(100), SimTime::from_secs(4)), applied);

    let mut rig = MpChaosRig::new(31, two_paths());
    rig.attach_faults(plan());
    let total = 256 << 10;
    assert_eq!(rig.run(total), total, "byte stream gap across the handover");
    let stats = rig.server.recovery_stats();
    assert!(stats.link_down_events >= 1, "{stats:?}");
}

/// Adjacent windows sharing an exact boundary: the first blackout's
/// restore and the second's down fire at the same instant. `into_events`
/// is a *stable* sort, so insertion order breaks the tie — up before down
/// — and the interface nets out down across the seam rather than
/// flickering the other way. The pair still restores nominal.
#[test]
fn back_to_back_blackouts_keep_stable_order_at_the_shared_boundary() {
    let sec = SimTime::from_secs;
    let plan = || {
        FaultPlan::new()
            .blackout(FaultTarget::Wifi, sec(1), SimDuration::from_secs(1))
            .blackout(FaultTarget::Wifi, sec(2), SimDuration::from_secs(1))
    };

    let applied: Vec<String> = plan().into_events().iter().map(describe).collect();
    assert_eq!(
        applied,
        vec![
            "wifi:up=false", // 1 s
            "wifi:up=true",  // 2 s — first window's restore wins the tie...
            "wifi:up=false", // 2 s — ...then the second window re-downs
            "wifi:up=true",  // 3 s
        ]
    );
    // One poll at the seam drains both tied events in that stable order.
    let mut inj = FaultInjector::new(plan());
    let mut surface = RecordingSurface::default();
    inj.poll(sec(1), &mut surface);
    assert_eq!(inj.next_deadline(), Some(sec(2)));
    assert_eq!(inj.poll(sec(2), &mut surface), 2, "seam must drain as one");
    assert_eq!(surface.applied[1].1, "wifi:up=true");
    assert_eq!(surface.applied[2].1, "wifi:up=false");

    assert!(plan().restores_nominal());
    let mut rig = MpChaosRig::new(37, two_paths());
    rig.attach_faults(plan());
    let total = 96 << 10;
    assert_eq!(
        rig.run(total),
        total,
        "byte stream gap across adjacent windows"
    );
}

/// Same seed + same plan ⇒ identical delivery trajectory and identical
/// recovery accounting.
#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut rig = MpChaosRig::new(23, two_paths());
        let mut fault_rng = rig.net.fork("faults");
        rig.attach_faults(gen_plan(&mut fault_rng));
        let delivered = rig.run(128 << 10);
        (
            delivered,
            *rig.client.recovery_stats(),
            *rig.server.recovery_stats(),
        )
    };
    assert_eq!(run(), run());
}
