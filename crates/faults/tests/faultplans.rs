//! End-to-end fault-plan properties.
//!
//! The core promise of the fault subsystem: *no generated fault plan can
//! make MPTCP corrupt the byte stream*. Faults may slow a transfer down,
//! kill subflows, and force reinjection — but the client must always end
//! with exactly the bytes the server wrote, and the online invariant
//! observer must stay silent.

use emptcp_faults::plan::FaultAction;
use emptcp_faults::testnet::{ChaosPath, MpChaosRig};
use emptcp_faults::{FaultPlan, FaultTarget};
use emptcp_mptcp::SubflowId;
use emptcp_phy::{GeParams, IfaceKind};
use emptcp_sim::{SimDuration, SimRng, SimTime};
use emptcp_telemetry::Telemetry;
use proptest::prelude::*;

fn two_paths() -> Vec<ChaosPath> {
    vec![
        ChaosPath::new(0.01, SimDuration::from_millis(12), 3),
        ChaosPath::new(0.02, SimDuration::from_millis(35), 3),
    ]
}

/// Draw a random-but-reproducible fault plan: 1–4 primitives with random
/// targets and timings, every one of which eventually restores the nominal
/// state (so a transfer can always finish after the storm passes).
fn gen_plan(rng: &mut SimRng) -> FaultPlan {
    let ms = SimDuration::from_millis;
    let mut plan = FaultPlan::new();
    let n = 1 + rng.below(4);
    for _ in 0..n {
        let target = if rng.chance(0.5) {
            FaultTarget::Wifi
        } else {
            FaultTarget::Cellular
        };
        let from = SimTime::from_millis(500 + rng.below(10_000));
        plan = match rng.below(5) {
            0 => plan.blackout(target, from, ms(200 + rng.below(4_000))),
            1 => plan.flap_train(
                target,
                from,
                1 + rng.below(3) as u32,
                ms(100 + rng.below(500)),
                ms(300 + rng.below(1_500)),
            ),
            2 => plan.burst_loss(
                target,
                from,
                ms(1_000 + rng.below(6_000)),
                GeParams {
                    p_good_to_bad: 0.02 + 0.08 * rng.below(100) as f64 / 100.0,
                    p_bad_to_good: 0.2,
                    loss_good: 0.0,
                    loss_bad: 0.5 + 0.4 * rng.below(100) as f64 / 100.0,
                },
            ),
            3 => plan.rtt_spike(
                target,
                from,
                ms(500 + rng.below(3_000)),
                ms(50 + rng.below(200)),
            ),
            // A silent rate-zero blackhole: no link-layer notification, so
            // only RTO-based failure detection can see it.
            _ => plan.at(from, target, FaultAction::Rate(Some(0))).at(
                from + ms(200 + rng.below(2_500)),
                target,
                FaultAction::Rate(None),
            ),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_fault_plans_preserve_exact_delivery(
        total_kb in 32u64..128,
        seed in 0u64..u64::MAX,
    ) {
        let total = total_kb << 10;
        let mut rig = MpChaosRig::new(seed, two_paths());
        let mut fault_rng = rig.net.fork("faults");
        rig.attach_faults(gen_plan(&mut fault_rng));
        let telemetry = Telemetry::builder().invariants(true).build();
        rig.client.set_telemetry(telemetry.scope(0));
        rig.server.set_telemetry(telemetry.scope(1));

        let delivered = rig.run(total);
        prop_assert_eq!(delivered, total, "byte stream gap under faults");
        let violations = telemetry.violations();
        prop_assert!(violations.is_empty(), "invariants violated: {violations:?}");
    }
}

/// The ISSUE's regression case: the only *active* subflow is blacked out
/// while a configured backup waits; the backup must be promoted and the
/// transfer must complete with recovery visible in the stats.
#[test]
fn blackout_of_only_active_subflow_with_backup_completes() {
    let mut rig = MpChaosRig::new(11, two_paths());
    rig.client.subflow_mut(SubflowId(1)).backup = true;
    rig.server.subflow_mut(SubflowId(1)).backup = true;
    rig.attach_faults(FaultPlan::new().blackout(
        FaultTarget::Wifi,
        SimTime::from_millis(500),
        SimDuration::from_secs(5),
    ));
    let total = 256 << 10;
    assert_eq!(rig.run(total), total);
    // The backup actually carried traffic during the blackout.
    assert!(
        rig.client.delivered_by_iface(IfaceKind::CellularLte) > 0,
        "backup never promoted into service"
    );
    let stats = rig.server.recovery_stats();
    assert!(stats.link_down_events >= 1, "{stats:?}");
    assert!(stats.backup_promotions >= 1, "{stats:?}");
    assert!(
        stats.worst_recovery_latency().is_some(),
        "recovery latency never measured: {stats:?}"
    );
}

/// A silent blackhole (no link-layer notification) must be caught by the
/// consecutive-RTO failure detector, and the subflow must be revived by
/// ack progress once the hole heals.
#[test]
fn silent_blackhole_detected_by_rto_threshold() {
    let mut rig = MpChaosRig::new(17, two_paths());
    rig.notify_link_down = false;
    rig.server.set_failure_threshold(2);
    rig.attach_faults(
        FaultPlan::new()
            .at(
                SimTime::from_millis(500),
                FaultTarget::Wifi,
                FaultAction::Rate(Some(0)),
            )
            .at(
                SimTime::from_secs(8),
                FaultTarget::Wifi,
                FaultAction::Rate(None),
            ),
    );
    let total = 512 << 10;
    assert_eq!(rig.run(total), total);
    let stats = rig.server.recovery_stats();
    assert!(stats.subflow_failures >= 1, "{stats:?}");
    assert!(stats.bytes_reinjected > 0, "{stats:?}");
}

/// Same seed + same plan ⇒ identical delivery trajectory and identical
/// recovery accounting.
#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut rig = MpChaosRig::new(23, two_paths());
        let mut fault_rng = rig.net.fork("faults");
        rig.attach_faults(gen_plan(&mut fault_rng));
        let delivered = rig.run(128 << 10);
        (
            delivered,
            *rig.client.recovery_stats(),
            *rig.server.recovery_stats(),
        )
    };
    assert_eq!(run(), run());
}
