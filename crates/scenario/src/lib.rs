#![warn(missing_docs)]
//! Declarative chaos scenarios.
//!
//! The paper validates eMPTCP over ~30 hand-picked traces; the chaos
//! subsystem replaces hand-picked with *generated*. One serializable
//! [`Scenario`] describes an entire experiment — the world (a single
//! device/server host or a many-client fleet), the workload, the device
//! energy profile, and a declarative fault script — and everything else is
//! derived from it:
//!
//! * [`spec`] — the [`Scenario`] type and its validity rules. A scenario
//!   either validates (non-empty workload, positive capacities, every
//!   fault recoverable) or fails with a typed [`ScenarioError`].
//! * [`io`] — `.scenario` JSON files: parse, validate, and the canonical
//!   byte form CI replays byte-identically.
//! * [`corpus`] — the committed scenario corpus embedded at compile time,
//!   the source of truth the `faults` scenario library and the fleet
//!   config presets are loaded from.
//! * [`gen`] — the deterministic fuzzer: `(run seed, case index)` maps to
//!   one arbitrary-but-valid scenario, byte-reproducible forever.
//! * [`shrink`] — greedy delta-debugging: given a failing scenario and a
//!   re-run predicate, drop faults, clients and bytes until the repro is
//!   minimal.
//!
//! The crate deliberately sits *below* the experiment harness: it knows
//! how to describe and transform scenarios, never how to run them. The
//! `expr` crate binds a scenario to the host simulation or the fleet and
//! applies the end-of-run oracles.

pub mod corpus;
pub mod gen;
pub mod io;
pub mod shrink;
pub mod spec;

pub use spec::{DeviceKind, HostSpec, Scenario, ScenarioError, StrategyKind, World};
