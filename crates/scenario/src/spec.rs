//! The [`Scenario`] type: one serializable description of an experiment.

use emptcp_energy::DeviceProfile;
use emptcp_faults::spec::{expand, FaultSpec};
use emptcp_faults::FaultPlan;
use emptcp_net::fleet::{FleetConfig, FleetConfigError};
use emptcp_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete, self-contained chaos scenario. Everything an experiment
/// needs — topology, client mix, device energy profile, workload and the
/// fault script — in one value that serializes to a `.scenario` JSON file
/// and back without loss.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable name: lowercase letters, digits, `-` and `_` only. Doubles
    /// as the CLI handle and the corpus file stem.
    pub name: String,
    /// One-line description for `--list` output.
    pub summary: String,
    /// Root seed for every random draw in the run. CLI `--seed` overrides.
    pub seed: u64,
    /// The world the scenario runs in.
    pub world: World,
    /// Declarative fault script, expanded to a [`FaultPlan`] at run time.
    pub faults: Vec<FaultSpec>,
}

/// Which simulation substrate a scenario drives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum World {
    /// The single device/server host simulation (`expr::host`): radios,
    /// RRC, the energy meter — the substrate with energy accounting.
    Host(HostSpec),
    /// The many-client fleet over a shared bottleneck (`net::fleet`) —
    /// the substrate with fairness accounting.
    Fleet(FleetConfig),
}

/// The single-device world: good-path capacities, RTTs, one download, a
/// transport strategy and a device energy profile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// WiFi AP goodput, bps.
    pub wifi_bps: u64,
    /// Cellular (LTE) downlink capacity, bps.
    pub cell_bps: u64,
    /// Base round-trip to the server over WiFi, ms.
    pub wifi_rtt_ms: u64,
    /// Base round-trip to the server over cellular, ms.
    pub cell_rtt_ms: u64,
    /// Download size, bytes. The exact-delivery oracle asserts this many
    /// bytes arrive despite every fault in the script.
    pub transfer_bytes: u64,
    /// The transport strategy under test.
    pub strategy: StrategyKind,
    /// The device whose measured power model the energy meter uses.
    pub device: DeviceKind,
}

/// Serializable handle for the transport strategies the harness knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Standard MPTCP, both subflows always on.
    Mptcp,
    /// eMPTCP with the paper's default controller configuration.
    Emptcp,
    /// Single-path TCP over WiFi.
    TcpWifi,
    /// Single-path TCP over cellular.
    TcpCellular,
    /// MPTCP with WiFi-First path management.
    WifiFirst,
    /// The MDP scheduler of Pluntke et al.
    MdpScheduler,
    /// MPTCP Single-Path mode.
    SinglePath,
}

impl StrategyKind {
    /// Stable lowercase label (matches the `simulate --strategy` names).
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Mptcp => "mptcp",
            StrategyKind::Emptcp => "emptcp",
            StrategyKind::TcpWifi => "tcp-wifi",
            StrategyKind::TcpCellular => "tcp-cellular",
            StrategyKind::WifiFirst => "wifi-first",
            StrategyKind::MdpScheduler => "mdp",
            StrategyKind::SinglePath => "single-path",
        }
    }
}

/// Serializable handle for the measured device energy profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Samsung Galaxy S3 (the paper's primary measurement device).
    GalaxyS3,
    /// LG Nexus 5.
    Nexus5,
}

impl DeviceKind {
    /// The measured power model for this device.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceKind::GalaxyS3 => DeviceProfile::galaxy_s3(),
            DeviceKind::Nexus5 => DeviceProfile::nexus_5(),
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::GalaxyS3 => "galaxy-s3",
            DeviceKind::Nexus5 => "nexus-5",
        }
    }
}

impl Scenario {
    /// Expand the declarative fault script into the injector's plan.
    pub fn fault_plan(&self) -> FaultPlan {
        expand(&self.faults)
    }

    /// Check every validity rule; a scenario that validates is safe to
    /// hand to the runners and entitled to the end-of-run oracles.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(ScenarioError::BadName(self.name.clone()));
        }
        match &self.world {
            World::Host(host) => {
                if host.wifi_bps == 0 {
                    return Err(ScenarioError::ZeroCapacityLink("wifi"));
                }
                if host.cell_bps == 0 {
                    return Err(ScenarioError::ZeroCapacityLink("cellular"));
                }
                if host.transfer_bytes == 0 {
                    return Err(ScenarioError::EmptyWorkload);
                }
            }
            World::Fleet(cfg) => cfg.validate()?,
        }
        for fault in &self.faults {
            if !fault.is_well_formed() {
                return Err(ScenarioError::MalformedFault(fault.label()));
            }
        }
        let plan = self.fault_plan();
        if !plan.is_empty() {
            if !plan.restores_nominal() {
                return Err(ScenarioError::UnrecoverableFaults);
            }
            if let World::Fleet(cfg) = &self.world {
                let horizon = SimTime::ZERO + cfg.duration;
                if plan.end_time().is_some_and(|t| t >= horizon) {
                    return Err(ScenarioError::FaultsPastHorizon);
                }
            }
        }
        Ok(())
    }

    /// True when the fleet world is exactly the "do no harm" cell shape:
    /// one MPTCP client against one TCP client, LIA-coupled, no cross
    /// traffic, no faults, and access links that cannot themselves be the
    /// bottleneck. Only scenarios of this shape are subject to the
    /// fairness-bounds oracle.
    pub fn is_do_no_harm(&self) -> bool {
        let World::Fleet(cfg) = &self.world else {
            return false;
        };
        cfg.clients == 2
            && cfg.mptcp_every == 2
            && cfg.coupled
            && cfg.cross_sources == 0
            && self.faults.is_empty()
            && cfg.access_a.rate_bps >= cfg.bottleneck.rate_bps
            && cfg.access_b.rate_bps >= cfg.bottleneck.rate_bps
    }

    /// Short world label for reports.
    pub fn world_label(&self) -> &'static str {
        match self.world {
            World::Host(_) => "host",
            World::Fleet(_) => "fleet",
        }
    }
}

/// Why a scenario cannot run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScenarioError {
    /// The name field is empty.
    EmptyName,
    /// The name contains characters outside `[a-z0-9-_]`.
    BadName(String),
    /// A host-world link has zero capacity (payload names it).
    ZeroCapacityLink(&'static str),
    /// The workload moves zero bytes.
    EmptyWorkload,
    /// A fleet-world config failed its own validation.
    Fleet(FleetConfigError),
    /// A fault primitive is structurally degenerate (payload is its label).
    MalformedFault(&'static str),
    /// The fault script leaves the network perturbed at the end — the
    /// recovery oracles would be vacuous, so the scenario is rejected.
    UnrecoverableFaults,
    /// A fleet fault fires at or past the horizon and could never be
    /// observed, let alone recovered from.
    FaultsPastHorizon,
    /// The `.scenario` file was not valid JSON for this schema.
    Parse(String),
}

impl From<FleetConfigError> for ScenarioError {
    fn from(e: FleetConfigError) -> Self {
        ScenarioError::Fleet(e)
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyName => write!(f, "scenario name is empty"),
            ScenarioError::BadName(name) => {
                write!(
                    f,
                    "scenario name `{name}` has characters outside [a-z0-9-_]"
                )
            }
            ScenarioError::ZeroCapacityLink(which) => {
                write!(f, "host link `{which}` has zero capacity")
            }
            ScenarioError::EmptyWorkload => write!(f, "workload moves zero bytes"),
            ScenarioError::Fleet(e) => write!(f, "{e}"),
            ScenarioError::MalformedFault(label) => {
                write!(f, "fault primitive `{label}` is degenerate (zero extent)")
            }
            ScenarioError::UnrecoverableFaults => {
                write!(f, "fault script never restores the network to nominal")
            }
            ScenarioError::FaultsPastHorizon => {
                write!(f, "a fleet fault fires at or past the run horizon")
            }
            ScenarioError::Parse(detail) => write!(f, "scenario parse error: {detail}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;
    use emptcp_faults::FaultTarget;

    fn host_scenario() -> Scenario {
        Scenario {
            name: "test-host".to_string(),
            summary: "a test".to_string(),
            seed: 7,
            world: World::Host(HostSpec {
                wifi_bps: 10_000_000,
                cell_bps: 12_000_000,
                wifi_rtt_ms: 25,
                cell_rtt_ms: 60,
                transfer_bytes: 1 << 20,
                strategy: StrategyKind::Emptcp,
                device: DeviceKind::GalaxyS3,
            }),
            faults: vec![FaultSpec::Blackout {
                target: FaultTarget::Wifi,
                from_ms: 1_000,
                dur_ms: 2_000,
            }],
        }
    }

    #[test]
    fn valid_scenario_validates() {
        assert_eq!(host_scenario().validate(), Ok(()));
    }

    #[test]
    fn typed_errors_for_each_rule() {
        let mut s = host_scenario();
        s.name = String::new();
        assert_eq!(s.validate(), Err(ScenarioError::EmptyName));

        let mut s = host_scenario();
        s.name = "Bad Name".to_string();
        assert!(matches!(s.validate(), Err(ScenarioError::BadName(_))));

        let mut s = host_scenario();
        if let World::Host(h) = &mut s.world {
            h.transfer_bytes = 0;
        }
        assert_eq!(s.validate(), Err(ScenarioError::EmptyWorkload));

        let mut s = host_scenario();
        s.faults = vec![FaultSpec::RateStep {
            target: FaultTarget::Wifi,
            at_ms: 500,
            bps: Some(1_000_000),
        }];
        assert_eq!(s.validate(), Err(ScenarioError::UnrecoverableFaults));

        let mut s = host_scenario();
        s.world = World::Fleet(FleetConfig::contended(0, 1));
        assert_eq!(
            s.validate(),
            Err(ScenarioError::Fleet(FleetConfigError::NoClients))
        );
    }

    #[test]
    fn fleet_fault_past_horizon_is_rejected() {
        let mut s = host_scenario();
        let mut cfg = FleetConfig::contended(2, 1);
        cfg.duration = emptcp_sim::SimDuration::from_secs(4);
        s.world = World::Fleet(cfg);
        s.faults = vec![FaultSpec::RttSpike {
            target: FaultTarget::Core,
            from_ms: 3_000,
            dur_ms: 2_000,
            extra_ms: 50,
        }];
        assert_eq!(s.validate(), Err(ScenarioError::FaultsPastHorizon));
    }

    #[test]
    fn do_no_harm_shape_is_detected() {
        let mut s = host_scenario();
        assert!(!s.is_do_no_harm());
        let mut cfg = FleetConfig::do_no_harm_cell(1);
        cfg.access_a.rate_bps = cfg.bottleneck.rate_bps * 2;
        cfg.access_b.rate_bps = cfg.bottleneck.rate_bps * 2;
        s.world = World::Fleet(cfg);
        s.faults.clear();
        assert!(s.is_do_no_harm());
    }
}
