//! The committed scenario corpus, embedded at compile time.
//!
//! Every `scenarios/*.scenario` file at the repo root is compiled into the
//! binary with `include_str!`, so the corpus is available from any working
//! directory and a scenario file cannot drift from the code without a
//! rebuild noticing. The table below is the single registry: adding a file
//! means adding a row, and the `corpus_is_sorted_and_canonical` test pins
//! the name order and the canonical byte form of every entry.

use crate::spec::Scenario;

macro_rules! corpus_file {
    ($name:literal) => {
        (
            $name,
            include_str!(concat!("../../../scenarios/", $name, ".scenario")),
        )
    };
}

/// `(name, canonical bytes)` for every committed scenario, sorted by name.
pub const FILES: &[(&str, &str)] = &[
    corpus_file!("ap-vanish"),
    corpus_file!("burst-loss-storm"),
    corpus_file!("cafe-hotspot"),
    corpus_file!("commuter-train"),
    corpus_file!("congested_core"),
    corpus_file!("do-no-harm-cell"),
    corpus_file!("elevator-ride"),
    corpus_file!("flappy-wifi"),
    corpus_file!("fleet-contended"),
    corpus_file!("fleet-core-brownout"),
    corpus_file!("fleet-lossy-core"),
    corpus_file!("fleet-mptcp-heavy"),
    corpus_file!("fleet-rush-hour"),
    corpus_file!("fleet-small-office"),
    corpus_file!("fleet-uncoupled-pair"),
    corpus_file!("handover-walk"),
    corpus_file!("lte-tunnel"),
    corpus_file!("midnight-update"),
    corpus_file!("parking-garage"),
    corpus_file!("regression-energy-monotone"),
    corpus_file!("regression-stuck-subflow"),
    corpus_file!("weak-ap-strong-lte"),
];

/// Sorted names of every corpus scenario.
pub fn names() -> Vec<&'static str> {
    FILES.iter().map(|(n, _)| *n).collect()
}

/// Raw canonical bytes of a corpus scenario.
pub fn raw(name: &str) -> Option<&'static str> {
    FILES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, text)| *text)
}

/// Parse and validate one corpus scenario by name.
pub fn load(name: &str) -> Option<Scenario> {
    raw(name).map(|text| {
        crate::io::from_json_str(text)
            .unwrap_or_else(|e| panic!("corpus scenario `{name}` is invalid: {e}"))
    })
}

/// Parse and validate the whole corpus, in name order.
pub fn all() -> Vec<Scenario> {
    names()
        .into_iter()
        .map(|n| load(n).expect("listed name loads"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::to_canonical_json;

    #[test]
    fn corpus_is_sorted_and_canonical() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "corpus table must be sorted by name");
        assert!(names.len() >= 20, "corpus must stay at 20+ scenarios");

        for (name, text) in FILES {
            let sc = load(name).unwrap();
            assert_eq!(&sc.name, name, "file stem must equal the scenario name");
            assert_eq!(
                to_canonical_json(&sc),
                *text,
                "{name}.scenario is not in canonical form"
            );
        }
    }

    #[test]
    fn corpus_covers_both_worlds_and_fault_shapes() {
        let all = all();
        assert!(all.iter().any(|s| s.world_label() == "host"));
        assert!(all.iter().any(|s| s.world_label() == "fleet"));
        assert!(all.iter().any(|s| !s.faults.is_empty()));
        assert!(all.iter().any(|s| s.is_do_no_harm()));
    }
}
