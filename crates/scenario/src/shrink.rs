//! Greedy minimal-repro shrinking.
//!
//! The vendored proptest stub has no value trees and therefore no
//! shrinking, so the chaos fuzzer brings its own: classic greedy delta
//! debugging over the [`Scenario`] structure. Given a failing scenario and
//! a predicate that re-runs it (returning `true` while the failure still
//! reproduces), [`shrink`] repeatedly tries structure-reducing candidate
//! edits — drop a fault, halve the client count, shrink the transfer —
//! keeping each edit only if the candidate still validates *and* still
//! fails. The loop runs to a fixpoint, so the result is 1-minimal with
//! respect to the edit set: no single remaining edit can be applied
//! without losing the failure.
//!
//! Every candidate is validated before the predicate runs, so shrinking
//! can never escape the valid-scenario space (e.g. by dropping the restore
//! half of a rate-step pair).

use crate::spec::{Scenario, World};
use emptcp_faults::spec::FaultSpec;

/// Maximum predicate evaluations per [`shrink`] call — a safety valve so a
/// flaky predicate cannot spin forever. Generously above what the greedy
/// pass needs on generator-sized scenarios.
pub const MAX_PREDICATE_RUNS: usize = 400;

/// Shrink `scenario` while `failing` keeps returning `true`. The input is
/// assumed to be failing; the result is the smallest failing scenario the
/// greedy edit set can reach.
pub fn shrink(scenario: Scenario, mut failing: impl FnMut(&Scenario) -> bool) -> Scenario {
    let mut best = scenario;
    let mut budget = MAX_PREDICATE_RUNS;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if budget == 0 {
                return best;
            }
            if candidate.validate().is_err() {
                continue;
            }
            budget -= 1;
            if failing(&candidate) {
                best = candidate;
                improved = true;
                break; // restart candidate generation from the new best
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Candidate edits, most aggressive first: structural deletions, then
/// halvings of the remaining quantities.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Drop each fault primitive.
    for i in 0..sc.faults.len() {
        let mut cand = sc.clone();
        cand.faults.remove(i);
        out.push(cand);
    }

    // Simplify remaining primitives (fewer flaps, shorter ramps).
    for i in 0..sc.faults.len() {
        if let Some(simpler) = simplify_fault(&sc.faults[i]) {
            let mut cand = sc.clone();
            cand.faults[i] = simpler;
            out.push(cand);
        }
    }

    match &sc.world {
        World::Fleet(cfg) => {
            if cfg.clients > 1 {
                let mut cand = sc.clone();
                if let World::Fleet(c) = &mut cand.world {
                    c.clients = (cfg.clients / 2).max(1);
                }
                out.push(cand);
                let mut cand = sc.clone();
                if let World::Fleet(c) = &mut cand.world {
                    c.clients = cfg.clients - 1;
                }
                out.push(cand);
            }
            if cfg.cross_sources > 0 {
                let mut cand = sc.clone();
                if let World::Fleet(c) = &mut cand.world {
                    c.cross_sources = 0;
                }
                out.push(cand);
            }
            let dur_ms = cfg.duration.as_millis_f64() as u64;
            if dur_ms > 1_000 {
                let mut cand = sc.clone();
                if let World::Fleet(c) = &mut cand.world {
                    c.duration = emptcp_sim::SimDuration::from_millis((dur_ms / 2).max(1_000));
                }
                out.push(cand);
            }
        }
        World::Host(host) => {
            if host.transfer_bytes > 64 << 10 {
                let mut cand = sc.clone();
                if let World::Host(h) = &mut cand.world {
                    h.transfer_bytes = (host.transfer_bytes / 2).max(64 << 10);
                }
                out.push(cand);
            }
        }
    }

    out
}

fn simplify_fault(fault: &FaultSpec) -> Option<FaultSpec> {
    match fault {
        FaultSpec::FlapTrain {
            target,
            from_ms,
            flaps,
            down_ms,
            up_ms,
        } if *flaps > 1 => Some(FaultSpec::FlapTrain {
            target: *target,
            from_ms: *from_ms,
            flaps: flaps / 2,
            down_ms: *down_ms,
            up_ms: *up_ms,
        }),
        FaultSpec::BandwidthCollapse {
            target,
            from_ms,
            hold_ms,
            collapsed_bps,
            ramp_bps,
            step_ms,
        } if !ramp_bps.is_empty() => Some(FaultSpec::BandwidthCollapse {
            target: *target,
            from_ms: *from_ms,
            hold_ms: *hold_ms,
            collapsed_bps: *collapsed_bps,
            ramp_bps: ramp_bps[..ramp_bps.len() - 1].to_vec(),
            step_ms: *step_ms,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::World;

    #[test]
    fn shrinks_fault_count_to_the_failing_core() {
        // Find a generated fleet scenario with several faults and clients.
        let sc = (0..400)
            .map(|c| generate(3, c))
            .find(|s| {
                matches!(&s.world, World::Fleet(cfg) if cfg.clients >= 6) && s.faults.len() >= 2
            })
            .expect("generator produces a busy fleet scenario");
        // Failure predicate: "fails whenever at least one fault exists".
        let min = shrink(sc.clone(), |s| !s.faults.is_empty());
        assert_eq!(min.faults.len(), 1, "one fault must remain");
        if let World::Fleet(cfg) = &min.world {
            assert_eq!(cfg.clients, 1, "clients shrink to the floor");
            assert_eq!(cfg.cross_sources, 0);
        }
        assert_eq!(min.validate(), Ok(()));
    }

    #[test]
    fn shrinking_a_host_scenario_reduces_the_transfer() {
        let sc = (0..200)
            .map(|c| generate(5, c))
            .find(|s| matches!(&s.world, World::Host(h) if h.transfer_bytes > 256 << 10))
            .expect("generator produces a large host transfer");
        let min = shrink(sc, |s| matches!(&s.world, World::Host(_)));
        if let World::Host(h) = &min.world {
            assert_eq!(h.transfer_bytes, 64 << 10);
        }
        assert!(min.faults.is_empty());
    }

    #[test]
    fn non_shrinkable_failure_returns_the_input() {
        let sc = generate(9, 0);
        // Predicate that only the exact input satisfies.
        let frozen = sc.clone();
        let min = shrink(sc.clone(), move |s| *s == frozen);
        assert_eq!(min, sc);
    }
}
