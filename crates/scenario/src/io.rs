//! `.scenario` files: parse, validate, canonical bytes.
//!
//! A scenario file is the pretty-printed JSON serialization of
//! [`Scenario`] plus a trailing newline — nothing else. That exact byte
//! form is *canonical*: the corpus tests re-serialize every committed file
//! and require identity, so a hand-edited file either round-trips cleanly
//! or fails CI, and two machines always agree on repro bytes.

use crate::spec::{Scenario, ScenarioError};
use std::path::Path;

/// Parse and validate a scenario from `.scenario` JSON text.
pub fn from_json_str(text: &str) -> Result<Scenario, ScenarioError> {
    let scenario: Scenario =
        serde_json::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
    scenario.validate()?;
    Ok(scenario)
}

/// The canonical byte form: pretty JSON plus a trailing newline.
pub fn to_canonical_json(scenario: &Scenario) -> String {
    let mut body = serde_json::to_string_pretty(scenario).expect("scenario serializes");
    body.push('\n');
    body
}

/// Load and validate a `.scenario` file.
pub fn load(path: &Path) -> Result<Scenario, ScenarioError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::Parse(format!("{}: {e}", path.display())))?;
    from_json_str(&text)
}

/// Write a scenario in canonical form.
pub fn save(path: &Path, scenario: &Scenario) -> std::io::Result<()> {
    std::fs::write(path, to_canonical_json(scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceKind, HostSpec, StrategyKind, World};
    use emptcp_faults::spec::FaultSpec;
    use emptcp_faults::FaultTarget;

    fn scenario() -> Scenario {
        Scenario {
            name: "roundtrip".to_string(),
            summary: "io round-trip fixture".to_string(),
            seed: 99,
            world: World::Host(HostSpec {
                wifi_bps: 8_000_000,
                cell_bps: 12_000_000,
                wifi_rtt_ms: 30,
                cell_rtt_ms: 70,
                transfer_bytes: 512 << 10,
                strategy: StrategyKind::Mptcp,
                device: DeviceKind::Nexus5,
            }),
            faults: vec![FaultSpec::RttSpike {
                target: FaultTarget::Core,
                from_ms: 1_000,
                dur_ms: 1_500,
                extra_ms: 80,
            }],
        }
    }

    #[test]
    fn canonical_form_round_trips_byte_identically() {
        let s = scenario();
        let bytes = to_canonical_json(&s);
        let back = from_json_str(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(to_canonical_json(&back), bytes);
        assert!(bytes.ends_with('\n'));
    }

    #[test]
    fn invalid_json_is_a_parse_error() {
        assert!(matches!(
            from_json_str("{ not json"),
            Err(ScenarioError::Parse(_))
        ));
    }

    #[test]
    fn valid_json_invalid_scenario_is_a_validation_error() {
        let mut s = scenario();
        if let World::Host(h) = &mut s.world {
            h.transfer_bytes = 0;
        }
        // Serialize without validating, then parse: the parse must apply
        // the validity rules.
        let bytes = to_canonical_json(&s);
        assert_eq!(from_json_str(&bytes), Err(ScenarioError::EmptyWorkload));
    }
}
