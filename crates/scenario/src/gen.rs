//! The deterministic scenario fuzzer.
//!
//! `(run seed, case index)` maps to exactly one arbitrary-but-valid
//! [`Scenario`], forever: the generator draws from the proptest stub's
//! splitmix64 [`TestRng`], whose stream depends only on those two values.
//! A violation found on one machine therefore names a scenario every other
//! machine can regenerate — and the committed shrunk repro replays it even
//! without the generator.
//!
//! Validity is *by construction*: fault windows are laid out sequentially
//! with gaps, every primitive is self-restoring (raw rate steps are never
//! generated), fleet faults land in the first half of the horizon, and
//! capacities are bounded away from zero. `debug_assert` double-checks
//! against [`Scenario::validate`] so the generator and the validator can
//! never drift apart silently.

use crate::spec::{DeviceKind, HostSpec, Scenario, StrategyKind, World};
use emptcp_faults::spec::FaultSpec;
use emptcp_faults::FaultTarget;
use emptcp_net::fleet::FleetConfig;
use emptcp_phy::{GeParams, LinkConfig};
use emptcp_sim::SimDuration;
use proptest::{Strategy as _, TestRng};
use std::ops::Range;

fn draw(rng: &mut TestRng, range: Range<u64>) -> u64 {
    range.generate(rng)
}

fn draw_f(rng: &mut TestRng, range: Range<f64>) -> f64 {
    range.generate(rng)
}

fn pick<T: Copy>(rng: &mut TestRng, items: &[T]) -> T {
    items[(rng.next_u64() % items.len() as u64) as usize]
}

/// Generate the scenario for one fuzz case. Same `(run_seed, case)` ⇒ the
/// same scenario, byte for byte.
pub fn generate(run_seed: u64, case: u64) -> Scenario {
    let mut rng = TestRng::for_case(&format!("scenario-fuzz:{run_seed}"), case);
    let name = format!("fuzz-{run_seed:x}-{case}");
    let seed = draw(&mut rng, 0..1_000_000);
    let shape = rng.next_u64() % 8;
    let scenario = if shape < 4 {
        host_scenario(&mut rng, name, seed)
    } else if shape < 7 {
        fleet_scenario(&mut rng, name, seed)
    } else {
        do_no_harm_scenario(&mut rng, name, seed)
    };
    debug_assert_eq!(scenario.validate(), Ok(()), "generator produced invalid");
    scenario
}

fn host_scenario(rng: &mut TestRng, name: String, seed: u64) -> Scenario {
    let spec = HostSpec {
        wifi_bps: draw(rng, 2_000_000..24_000_000),
        cell_bps: draw(rng, 3_000_000..20_000_000),
        wifi_rtt_ms: draw(rng, 10..60),
        cell_rtt_ms: draw(rng, 30..120),
        transfer_bytes: draw(rng, 256..1_536) << 10,
        strategy: pick(
            rng,
            &[
                StrategyKind::Mptcp,
                StrategyKind::Emptcp,
                StrategyKind::WifiFirst,
            ],
        ),
        device: pick(rng, &[DeviceKind::GalaxyS3, DeviceKind::Nexus5]),
    };
    let faults = host_faults(rng);
    Scenario {
        name,
        summary: "fuzz-generated host scenario".to_string(),
        seed,
        world: World::Host(spec),
        faults,
    }
}

/// Sequential fault windows on the host world: each primitive starts after
/// the previous one has fully recovered, so the script is recoverable no
/// matter which primitives were drawn.
fn host_faults(rng: &mut TestRng) -> Vec<FaultSpec> {
    let count = draw(rng, 0..4);
    let mut faults = Vec::new();
    let mut cursor = draw(rng, 500..1_500);
    for _ in 0..count {
        let (fault, recovered) = host_fault_at(rng, cursor);
        faults.push(fault);
        cursor = recovered + draw(rng, 200..900);
    }
    faults
}

fn host_fault_at(rng: &mut TestRng, from_ms: u64) -> (FaultSpec, u64) {
    let path = pick(rng, &[FaultTarget::Wifi, FaultTarget::Cellular]);
    match rng.next_u64() % 7 {
        0 => {
            let dur_ms = draw(rng, 300..3_000);
            (
                FaultSpec::Blackout {
                    target: path,
                    from_ms,
                    dur_ms,
                },
                from_ms + dur_ms,
            )
        }
        1 => {
            let flaps = draw(rng, 2..4) as u32;
            let down_ms = draw(rng, 200..500);
            let up_ms = draw(rng, 400..1_000);
            (
                FaultSpec::FlapTrain {
                    target: path,
                    from_ms,
                    flaps,
                    down_ms,
                    up_ms,
                },
                from_ms + flaps as u64 * (down_ms + up_ms),
            )
        }
        2 => {
            let dur_ms = draw(rng, 500..2_500);
            (
                FaultSpec::BurstLoss {
                    target: FaultTarget::Wifi,
                    from_ms,
                    dur_ms,
                    ge: GeParams {
                        p_good_to_bad: draw_f(rng, 0.02..0.10),
                        p_bad_to_good: draw_f(rng, 0.20..0.40),
                        loss_good: 0.0,
                        loss_bad: draw_f(rng, 0.40..0.80),
                    },
                },
                from_ms + dur_ms,
            )
        }
        3 => {
            let hold_ms = draw(rng, 500..2_000);
            let step_ms = draw(rng, 300..800);
            (
                FaultSpec::BandwidthCollapse {
                    target: path,
                    from_ms,
                    hold_ms,
                    collapsed_bps: draw(rng, 500_000..3_000_000),
                    ramp_bps: vec![draw(rng, 3_000_000..8_000_000)],
                    step_ms,
                },
                from_ms + hold_ms + 2 * step_ms,
            )
        }
        4 => {
            let dur_ms = draw(rng, 500..3_000);
            (
                FaultSpec::RttSpike {
                    target: pick(
                        rng,
                        &[FaultTarget::Wifi, FaultTarget::Cellular, FaultTarget::Core],
                    ),
                    from_ms,
                    dur_ms,
                    extra_ms: draw(rng, 40..150),
                },
                from_ms + dur_ms,
            )
        }
        5 => {
            let gap_ms = draw(rng, 500..2_500);
            (
                FaultSpec::Handover {
                    at_ms: from_ms,
                    gap_ms,
                },
                from_ms + gap_ms,
            )
        }
        _ => {
            let dur_ms = draw(rng, 500..2_000);
            (
                FaultSpec::RrcStall {
                    at_ms: from_ms,
                    dur_ms,
                    extra_ms: draw(rng, 50..150),
                },
                from_ms + dur_ms,
            )
        }
    }
}

fn fleet_scenario(rng: &mut TestRng, name: String, seed: u64) -> Scenario {
    let ms = SimDuration::from_millis;
    let clients = draw(rng, 2..9) as usize;
    let duration_ms = draw(rng, 2_500..4_500);
    // Bound the bottleneck away from per-client starvation: the
    // every-client-progresses oracle needs each stack to get a real share.
    let bottleneck_bps = draw(rng, clients as u64 * 1_500_000..61_000_000);
    let cross_sources = draw(rng, 0..3) as usize;
    let cfg = FleetConfig {
        clients,
        mptcp_every: draw(rng, 1..4) as usize,
        coupled: !rng.next_u64().is_multiple_of(5),
        bottleneck: LinkConfig {
            rate_bps: bottleneck_bps,
            prop_delay: ms(draw(rng, 5..20)),
            queue_capacity: draw(rng, 64..257) << 10,
            loss_prob: 0.0,
        },
        access_a: LinkConfig {
            rate_bps: draw(rng, 20_000_000..60_000_000),
            prop_delay: ms(draw(rng, 2..6)),
            queue_capacity: 128 << 10,
            loss_prob: 0.0,
        },
        access_b: LinkConfig {
            rate_bps: draw(rng, 10_000_000..40_000_000),
            prop_delay: ms(draw(rng, 10..25)),
            queue_capacity: 128 << 10,
            loss_prob: 0.0,
        },
        duration: ms(duration_ms),
        cross_sources,
        cross_rate_bps: draw(rng, 1_000_000..(bottleneck_bps / 4).max(1_000_001)),
        seed,
    };
    let faults = fleet_faults(rng, duration_ms);
    Scenario {
        name,
        summary: "fuzz-generated fleet scenario".to_string(),
        seed,
        world: World::Fleet(cfg),
        faults,
    }
}

/// Core-bottleneck faults confined to the first half of the horizon so the
/// fleet has the back half to recover in before the starvation oracle runs.
fn fleet_faults(rng: &mut TestRng, duration_ms: u64) -> Vec<FaultSpec> {
    let count = draw(rng, 0..3);
    let mut faults = Vec::new();
    let mut cursor = draw(rng, 300..700);
    for _ in 0..count {
        let budget = duration_ms / 2;
        if cursor >= budget {
            break;
        }
        let room = budget - cursor;
        let (fault, recovered) = match rng.next_u64() % 3 {
            0 => {
                let hold_ms = draw(rng, 300..room.clamp(301, 1_500));
                let step_ms = draw(rng, 200..500);
                (
                    FaultSpec::BandwidthCollapse {
                        target: FaultTarget::Core,
                        from_ms: cursor,
                        hold_ms,
                        collapsed_bps: pick(rng, &[0, 1_000_000, 3_000_000]),
                        ramp_bps: vec![draw(rng, 4_000_000..9_000_000)],
                        step_ms,
                    },
                    cursor + hold_ms + 2 * step_ms,
                )
            }
            1 => {
                let dur_ms = draw(rng, 300..room.clamp(301, 2_000));
                (
                    FaultSpec::RttSpike {
                        target: FaultTarget::Core,
                        from_ms: cursor,
                        dur_ms,
                        extra_ms: draw(rng, 30..120),
                    },
                    cursor + dur_ms,
                )
            }
            _ => {
                let dur_ms = draw(rng, 300..room.clamp(301, 1_500));
                (
                    FaultSpec::BurstLoss {
                        target: FaultTarget::Core,
                        from_ms: cursor,
                        dur_ms,
                        ge: GeParams {
                            p_good_to_bad: draw_f(rng, 0.02..0.08),
                            p_bad_to_good: draw_f(rng, 0.25..0.45),
                            loss_good: 0.0,
                            loss_bad: draw_f(rng, 0.30..0.50),
                        },
                    },
                    cursor + dur_ms,
                )
            }
        };
        // Keep the whole script inside the first ~70% of the horizon; a
        // primitive that would recover later than that is dropped rather
        // than shifted, so earlier draws never move.
        if recovered * 10 >= duration_ms * 7 {
            break;
        }
        faults.push(fault);
        cursor = recovered + draw(rng, 200..600);
    }
    faults
}

/// The "do no harm" shape: the only scenarios the fairness-bounds oracle
/// fires on, so the fuzzer must keep producing them.
fn do_no_harm_scenario(rng: &mut TestRng, name: String, seed: u64) -> Scenario {
    let ms = SimDuration::from_millis;
    let bottleneck_bps = draw(rng, 10_000_000..21_000_000);
    let mut cfg = FleetConfig::do_no_harm_cell(seed);
    cfg.bottleneck.rate_bps = bottleneck_bps;
    cfg.access_a.rate_bps = bottleneck_bps * 2;
    cfg.access_b.rate_bps = bottleneck_bps * 2;
    cfg.duration = ms(draw(rng, 5_000..8_001));
    Scenario {
        name,
        summary: "fuzz-generated do-no-harm cell".to_string(),
        seed,
        world: World::Fleet(cfg),
        faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_are_valid_and_deterministic() {
        for case in 0..200 {
            let a = generate(7, case);
            let b = generate(7, case);
            assert_eq!(a, b, "case {case} not deterministic");
            assert_eq!(a.validate(), Ok(()), "case {case} invalid");
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a: Vec<Scenario> = (0..20).map(|c| generate(1, c)).collect();
        let b: Vec<Scenario> = (0..20).map(|c| generate(2, c)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fuzzer_covers_both_worlds_and_faulted_runs() {
        let scenarios: Vec<Scenario> = (0..100).map(|c| generate(42, c)).collect();
        assert!(scenarios.iter().any(|s| matches!(s.world, World::Host(_))));
        assert!(scenarios.iter().any(|s| matches!(s.world, World::Fleet(_))));
        assert!(scenarios.iter().any(|s| !s.faults.is_empty()));
        assert!(scenarios.iter().any(|s| s.is_do_no_harm()));
    }
}
